package main

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"github.com/xheal/xheal"
	"github.com/xheal/xheal/internal/obs"
)

// The -parallel-scaling mode records how ApplyBatchParallel's throughput
// scales with GOMAXPROCS on a disjoint-heavy deletion workload — the
// empirical side of Theorem 5's locality argument (disjoint wounds heal
// independently, so repair work parallelizes). The schedule is precomputed
// once and replayed identically at every point: parallel apply is
// byte-deterministic, so each configuration heals the exact same wounds.

// scalingPoint is one (GOMAXPROCS, workers) measurement.
type scalingPoint struct {
	GoMaxProcs   int     `json:"go_max_procs"`
	Workers      int     `json:"workers"`
	Events       int     `json:"events"`
	WallMS       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	SpeedupVs1   float64 `json:"speedup_vs_1"`
}

// scalingReport is the schema of the -parallel-scaling output
// (BENCH_PR8.json). Note records the host caveat: on a single-CPU machine
// the curve measures scheduling overhead, not speedup — the multi-core CI
// runners produce the real curve.
type scalingReport struct {
	Env     obs.Env        `json:"env"`
	N       int            `json:"n"`
	Ticks   int            `json:"ticks"`
	PerTick int            `json:"deletions_per_tick"`
	Note    string         `json:"note"`
	Points  []scalingPoint `json:"points"`
}

// buildScalingSchedule generates the deletion-heavy batch schedule against a
// scratch network (victim choice needs the alive set, which repairs mutate).
// Determinism of the healer makes the recorded schedule valid for every
// replay configuration.
func buildScalingSchedule(n, ticks, perTick int) (*xheal.Graph, []xheal.Batch, error) {
	g0, err := xheal.RandomRegularGraph(n, 3, 31)
	if err != nil {
		return nil, nil, err
	}
	scratch, err := xheal.NewNetwork(g0, xheal.WithKappa(4), xheal.WithSeed(32))
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(33))
	alive := append([]xheal.NodeID(nil), scratch.Graph().Nodes()...)
	next := xheal.NodeID(1 << 20)
	batches := make([]xheal.Batch, 0, ticks)
	for t := 0; t < ticks; t++ {
		var b xheal.Batch
		for i := 0; i < perTick && len(alive) > 4; i++ {
			j := rng.Intn(len(alive))
			v := alive[j]
			alive[j] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
			b.Deletions = append(b.Deletions, v)
		}
		for range b.Deletions {
			u, w := alive[rng.Intn(len(alive))], alive[rng.Intn(len(alive))]
			nbrs := []xheal.NodeID{u, w}
			if u == w {
				nbrs = nbrs[:1]
			}
			b.Insertions = append(b.Insertions, xheal.BatchInsertion{Node: next, Neighbors: nbrs})
			alive = append(alive, next)
			next++
		}
		if err := scratch.ApplyBatch(b); err != nil {
			return nil, nil, fmt.Errorf("schedule tick %d: %w", t, err)
		}
		batches = append(batches, b)
	}
	return g0, batches, nil
}

// runParallelScaling replays the schedule at GOMAXPROCS ∈ {1, 2, 4, 8} with
// a matching worker count and writes the throughput curve to outPath.
func runParallelScaling(stderr io.Writer, outPath string) int {
	const (
		nodes   = 1024
		ticks   = 40
		perTick = 16
	)
	g0, batches, err := buildScalingSchedule(nodes, ticks, perTick)
	if err != nil {
		fmt.Fprintf(stderr, "parallel-scaling: %v\n", err)
		return 1
	}
	events := 0
	for _, b := range batches {
		events += len(b.Insertions) + len(b.Deletions)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	report := scalingReport{
		Env:     obs.CaptureEnv(),
		N:       nodes,
		Ticks:   ticks,
		PerTick: perTick,
		Note: "schedule is identical at every point (parallel apply is byte-deterministic); " +
			"points with go_max_procs > num_cpu measure scheduling overhead, not parallel speedup — " +
			"compare against a multi-core host for the real curve",
	}
	points := []int{1, 2, 4, 8}
	if ncpu, maxW := runtime.NumCPU(), points[len(points)-1]; ncpu < maxW {
		// An undersized host can only oversubscribe past its core count, so
		// flag the curve both interactively and in the archived JSON — a CI
		// artifact consumer must not read the tail points as real speedup.
		fmt.Fprintf(stderr, "parallel-scaling: warning: host has %d CPUs but the curve runs up to %d workers; "+
			"points beyond %d CPUs measure oversubscription, not speedup\n", ncpu, maxW, ncpu)
		report.Note += fmt.Sprintf("; WARNING: this host has only %d CPUs — points beyond %d workers are oversubscribed", ncpu, ncpu)
	}
	var base float64
	for _, gmp := range points {
		runtime.GOMAXPROCS(gmp)
		net, err := xheal.NewNetwork(g0, xheal.WithKappa(4), xheal.WithSeed(32))
		if err != nil {
			fmt.Fprintf(stderr, "parallel-scaling: %v\n", err)
			return 1
		}
		start := time.Now()
		for t, b := range batches {
			if err := net.ApplyBatchParallel(b, gmp); err != nil {
				fmt.Fprintf(stderr, "parallel-scaling: GOMAXPROCS=%d tick %d: %v\n", gmp, t, err)
				return 1
			}
		}
		wall := time.Since(start)
		eps := float64(events) / wall.Seconds()
		if gmp == 1 {
			base = eps
		}
		report.Points = append(report.Points, scalingPoint{
			GoMaxProcs:   gmp,
			Workers:      gmp,
			Events:       events,
			WallMS:       float64(wall.Microseconds()) / 1000,
			EventsPerSec: eps,
			SpeedupVs1:   eps / base,
		})
		fmt.Fprintf(stderr, "GOMAXPROCS=%d: %d events in %v (%.0f events/sec, %.2fx)\n",
			gmp, events, wall.Round(time.Millisecond), eps, eps/base)
	}
	if err := writeJSON(outPath, report); err != nil {
		fmt.Fprintf(stderr, "parallel-scaling: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %s\n", outPath)
	return 0
}
