package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/workload"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"E1", "E6", "E12"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRunSubset(t *testing.T) {
	code, out, errOut := runCLI(t, "-run", "e3, E9")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "E3 —") || !strings.Contains(out, "E9 —") {
		t.Fatalf("subset output missing tables:\n%s", out)
	}
	if strings.Contains(out, "E1 —") {
		t.Fatal("unselected experiment ran")
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("experiment reported FAIL:\n%s", out)
	}
}

// TestConformanceMode smoke-runs the soak matrix at a small size: every
// cell must pass and the summary must account for the full cross-product.
func TestConformanceMode(t *testing.T) {
	code, out, errOut := runCLI(t, "-conformance", "-conf-n", "16", "-conf-steps", "6")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("conformance cell failed:\n%s\n%s", out, errOut)
	}
	want := len(workload.Names()) * len(adversary.Names())
	if !strings.Contains(out, fmt.Sprintf("conformance: %d/%d cells ok", want, want)) {
		t.Fatalf("missing full-matrix summary:\n%s", out)
	}
}

// TestConformanceReplay: the repro path — a saved artifact replays through
// the lockstep checker, and a clean fixture reports ok.
func TestConformanceReplay(t *testing.T) {
	code, out, errOut := runCLI(t,
		"-conf-replay", filepath.Join("..", "..", "internal", "conformance", "testdata", "shrunk-er-n32-s7-churn-delete.json"),
		"-conf-seed", "7", "-conf-kappa", "4")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "conformance: ok") {
		t.Fatalf("missing ok verdict:\n%s", out)
	}
	if code, _, _ := runCLI(t, "-conf-replay", "/does/not/exist.json"); code == 0 {
		t.Fatal("missing artifact should fail")
	}
}

// TestConformanceModeDeterministicStdout: the soak output is rendered in
// cell order off the worker pool, so equal seeds give identical bytes.
func TestConformanceModeDeterministicStdout(t *testing.T) {
	args := []string{"-conformance", "-conf-n", "12", "-conf-steps", "4", "-conf-seed", "9"}
	code, first, errOut := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	code, second, errOut := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("rerun exit %d, stderr: %s", code, errOut)
	}
	if first != second {
		t.Fatalf("stdout not deterministic:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

func TestNoSelectionShowsUsage(t *testing.T) {
	code, _, errOut := runCLI(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "specify -all") {
		t.Fatalf("missing usage hint:\n%s", errOut)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCLI(t, "-bogus"); code != 2 {
		t.Fatal("bad flag should return 2")
	}
}

// The table output must be byte-identical across runs — that is what makes
// `xheal-bench -all > EXPERIMENTS.md` reproducible — so timing lines must go
// to stderr, not stdout, and repeated runs must render identical tables even
// though experiments execute on a worker pool.
func TestStdoutDeterministicAndTimingOnStderr(t *testing.T) {
	code, out1, err1 := runCLI(t, "-run", "E3,E9,E11")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, err1)
	}
	code, out2, _ := runCLI(t, "-run", "E3,E9,E11")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if out1 != out2 {
		t.Fatalf("stdout differs between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", out1, out2)
	}
	if strings.Contains(out1, "completed in") {
		t.Fatal("timing lines must not pollute deterministic stdout")
	}
	if !strings.Contains(err1, "completed in") {
		t.Fatalf("timing lines missing from stderr:\n%s", err1)
	}
	// Tables render in experiment order regardless of completion order.
	if strings.Index(out1, "E3 —") > strings.Index(out1, "E9 —") {
		t.Fatal("tables rendered out of experiment order")
	}
}

func TestBenchJSONWritesTimings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	code, _, errOut := runCLI(t, "-run", "E3", "-benchjson", path, "-micro=false")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read benchjson: %v", err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("benchjson is not valid JSON: %v\n%s", err, data)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].ID != "E3" {
		t.Fatalf("experiments = %+v, want one E3 entry", report.Experiments)
	}
	if report.Experiments[0].WallMS <= 0 {
		t.Fatalf("wall_ms = %v, want > 0", report.Experiments[0].WallMS)
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	code, _, errOut := runCLI(t, "-run", "E3", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

// TestParallelScalingCPUAnnotation pins the undersized-host caveat: when the
// host has fewer CPUs than the top of the worker curve, -parallel-scaling
// must warn on stderr and annotate the archived report's note, and must stay
// quiet on hosts wide enough to measure the real curve.
func TestParallelScalingCPUAnnotation(t *testing.T) {
	out := filepath.Join(t.TempDir(), "scaling.json")
	code, _, errOut := runCLI(t, "-parallel-scaling", out)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep scalingReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("scaling curve has %d points, want 4", len(rep.Points))
	}
	undersized := runtime.NumCPU() < rep.Points[len(rep.Points)-1].Workers
	if got := strings.Contains(errOut, "oversubscription, not speedup"); got != undersized {
		t.Fatalf("NumCPU=%d: stderr warning present=%v, want %v\nstderr: %s",
			runtime.NumCPU(), got, undersized, errOut)
	}
	if got := strings.Contains(rep.Note, "WARNING"); got != undersized {
		t.Fatalf("NumCPU=%d: note annotated=%v, want %v\nnote: %s",
			runtime.NumCPU(), got, undersized, rep.Note)
	}
}
