package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"E1", "E6", "E12"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRunSubset(t *testing.T) {
	code, out, errOut := runCLI(t, "-run", "e3, E9")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "E3 —") || !strings.Contains(out, "E9 —") {
		t.Fatalf("subset output missing tables:\n%s", out)
	}
	if strings.Contains(out, "E1 —") {
		t.Fatal("unselected experiment ran")
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("experiment reported FAIL:\n%s", out)
	}
}

func TestNoSelectionShowsUsage(t *testing.T) {
	code, _, errOut := runCLI(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "specify -all") {
		t.Fatalf("missing usage hint:\n%s", errOut)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCLI(t, "-bogus"); code != 2 {
		t.Fatal("bad flag should return 2")
	}
}
