// Command xheal-bench regenerates the reproduction tables recorded in
// EXPERIMENTS.md: one experiment per theorem/lemma/corollary of the paper
// plus the motivating star-attack example and the design ablations (see
// DESIGN.md §3 for the index).
//
// Usage:
//
//	xheal-bench -list          # show the experiment index
//	xheal-bench -all           # run everything (E1..E14)
//	xheal-bench -run E3,E9     # run a subset
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/xheal/xheal/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xheal-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list = fs.Bool("list", false, "list experiments and exit")
		all  = fs.Bool("all", false, "run every experiment")
		only = fs.String("run", "", "comma-separated experiment IDs (e.g. E3,E9)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	experiments := harness.All()
	if *list {
		for _, e := range experiments {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Name)
		}
		return 0
	}

	known := map[string]bool{}
	for _, e := range experiments {
		known[e.ID] = true
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if id == "" {
				continue
			}
			if !known[id] {
				fmt.Fprintf(stderr, "unknown experiment %q (see -list)\n", id)
				return 2
			}
			selected[id] = true
		}
		if len(selected) == 0 {
			fmt.Fprintln(stderr, "-run selected no experiments (see -list)")
			return 2
		}
	} else if !*all {
		fs.Usage()
		fmt.Fprintln(stderr, "\nspecify -all, -run <ids>, or -list")
		return 2
	}

	failures := 0
	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", e.ID, err)
			failures++
			continue
		}
		table.Render(stdout)
		fmt.Fprintf(stdout, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		return 1
	}
	return 0
}
