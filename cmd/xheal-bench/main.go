// Command xheal-bench regenerates the reproduction tables recorded in
// EXPERIMENTS.md: one experiment per theorem/lemma/corollary of the paper
// plus the motivating star-attack example and the design ablations (see
// docs/ARCHITECTURE.md for the experiment ↔ theorem index).
//
// Usage:
//
//	xheal-bench -list                 # show the experiment index
//	xheal-bench -all                  # run everything (E1..E14)
//	xheal-bench -run E3,E9            # run a subset
//	xheal-bench -all -benchjson out.json   # also record wall times + micro benches
//	xheal-bench -all -cpuprofile cpu.prof  # hot-path investigation
//	xheal-bench -conformance               # lockstep centralized-vs-distributed soak
//
// Experiments run concurrently on a bounded worker pool; tables are
// rendered to stdout in experiment order regardless of completion order, so
// `xheal-bench -all > EXPERIMENTS.md` is byte-reproducible. Timing lines go
// to stderr (they are the one non-deterministic output).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/xheal/xheal/internal/harness"
	"github.com/xheal/xheal/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xheal-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list       = fs.Bool("list", false, "list experiments and exit")
		all        = fs.Bool("all", false, "run every experiment")
		only       = fs.String("run", "", "comma-separated experiment IDs (e.g. E3,E9)")
		benchJSON  = fs.String("benchjson", "", "write per-experiment wall times and micro-benchmarks to this JSON file")
		micro      = fs.Bool("micro", true, "include the core micro-benchmarks in the -benchjson output")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file (taken at exit)")

		parScaling = fs.String("parallel-scaling", "", "measure ApplyBatchParallel throughput at GOMAXPROCS 1/2/4/8 and write the curve to this JSON file (see BENCH_PR8.json)")

		scale          = fs.String("scale", "", "comma-separated network sizes (e.g. 10000,100000): measure serving-path latency/throughput before vs after the incremental-metrics layer (see BENCH_PR10.json)")
		scaleEvents    = fs.Int("scale-events", 8192, "scale: events ingested through the array path per size")
		scaleOut       = fs.String("scale-out", "", "scale: write the report to this JSON file")
		scaleSloHealth = fs.Float64("scale-slo-health-p99-ms", 0, "scale: fail if live health-poll p99 exceeds this at the largest size (0 = no gate)")
		scaleSloIngest = fs.Float64("scale-slo-ingest-eps", 0, "scale: fail if array-ingest events/sec falls below this at the largest size (0 = no gate)")

		conf       = fs.Bool("conformance", false, "run the lockstep centralized-vs-distributed conformance matrix instead of experiments")
		confN      = fs.Int("conf-n", 64, "conformance: initial topology size per cell")
		confSteps  = fs.Int("conf-steps", 34, "conformance: adversarial events per cell")
		confSeed   = fs.Int64("conf-seed", 1000, "conformance: base seed (each cell derives its own; with -conf-replay, the exact run seed)")
		confKappa  = fs.Int("conf-kappa", 4, "conformance: expander degree parameter κ")
		confReplay = fs.String("conf-replay", "", "conformance: replay a trace artifact through the lockstep checker instead of the matrix")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *parScaling != "" {
		return runParallelScaling(stderr, *parScaling)
	}
	if *scale != "" {
		return runScale(stderr, *scale, *scaleEvents, *scaleOut, *scaleSloHealth, *scaleSloIngest)
	}
	if *confReplay != "" {
		return replayConformance(stdout, stderr, *confReplay, *confSeed, *confKappa)
	}
	if *conf {
		return runConformance(stdout, stderr, *confN, *confSteps, *confSeed, *confKappa)
	}

	experiments := harness.All()
	if *list {
		for _, e := range experiments {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Name)
		}
		return 0
	}

	known := map[string]bool{}
	for _, e := range experiments {
		known[e.ID] = true
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if id == "" {
				continue
			}
			if !known[id] {
				fmt.Fprintf(stderr, "unknown experiment %q (see -list)\n", id)
				return 2
			}
			selected[id] = true
		}
		if len(selected) == 0 {
			fmt.Fprintln(stderr, "-run selected no experiments (see -list)")
			return 2
		}
	} else if !*all {
		fs.Usage()
		fmt.Fprintln(stderr, "\nspecify -all, -run <ids>, or -list")
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	var todo []harness.Experiment
	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		todo = append(todo, e)
	}

	// Run experiments concurrently, render in experiment order: stdout stays
	// byte-identical no matter how the pool schedules. When wall times are
	// being recorded (-benchjson), run them one at a time instead — a timing
	// taken while other experiments compete for cores measures contention,
	// not experiment cost, and the BENCH_*.json trajectory must stay
	// comparable across machines.
	type outcome struct {
		table *harness.Table
		dur   time.Duration
		err   error
	}
	results := make([]outcome, len(todo))
	runOne := func(i int) error {
		start := time.Now()
		table, err := todo[i].Run()
		results[i] = outcome{table: table, dur: time.Since(start), err: err}
		return nil // errors are reported per experiment below
	}
	if *benchJSON != "" {
		for i := range todo {
			_ = runOne(i)
		}
	} else {
		_ = harness.ForEachIndex(len(todo), runOne)
	}

	failures := 0
	report := benchReport{GoMaxProcs: runtime.GOMAXPROCS(0), Env: obs.CaptureEnv()}
	for i, e := range todo {
		res := results[i]
		if res.err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", e.ID, res.err)
			failures++
			continue
		}
		res.table.Render(stdout)
		fmt.Fprintf(stderr, "(%s completed in %v)\n", e.ID, res.dur.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, experimentTiming{
			ID:     e.ID,
			WallMS: float64(res.dur.Microseconds()) / 1000,
		})
	}
	if failures > 0 {
		return 1
	}

	if *benchJSON != "" {
		if *micro {
			fmt.Fprintln(stderr, "running micro-benchmarks...")
			report.Micro = runMicroBenches()
		}
		if err := writeJSON(*benchJSON, report); err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %s\n", *benchJSON)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(stderr, "memprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "memprofile: %v\n", err)
			return 1
		}
	}
	return 0
}

// benchReport is the schema of the -benchjson output (see BENCH_*.json).
// GoMaxProcs predates the Env block and stays for series continuity.
type benchReport struct {
	GoMaxProcs  int                `json:"go_max_procs"`
	Env         obs.Env            `json:"env"`
	Experiments []experimentTiming `json:"experiments"`
	Micro       []microResult      `json:"micro"`
}

type experimentTiming struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
