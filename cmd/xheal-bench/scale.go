package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/metrics/live"
	"github.com/xheal/xheal/internal/obs"
	"github.com/xheal/xheal/internal/server"
	"github.com/xheal/xheal/internal/spectral"
	"github.com/xheal/xheal/internal/workload"
)

// The -scale mode records the serving daemon's large-n envelope: health-poll
// latency on the incremental path vs the clone-and-measure path, ingest
// throughput for single-event POSTs vs batched arrays, and λ₂ refresh cost
// cold vs warm-started — the before/after evidence behind BENCH_PR10.json.
// Optional SLO flags turn the run into a CI gate.

// scalePoint is one network size's measurements.
type scalePoint struct {
	N            int `json:"n"`
	InitialEdges int `json:"initial_edges"`

	// λ₂ refresh cost on this topology: a cold 90-step Lanczos run vs a
	// 32-step run warm-started from the previous Ritz vector after churn.
	Lambda2Cold        float64 `json:"lambda2_cold"`
	Lambda2ColdSeconds float64 `json:"lambda2_cold_seconds"`
	Lambda2Warm        float64 `json:"lambda2_warm"`
	Lambda2WarmSeconds float64 `json:"lambda2_warm_seconds"`

	// Health-poll latency, slow (SlowHealth: clone + full measure) vs live
	// (tracker + caches). Few slow polls at large n — each costs seconds.
	SlowHealthPolls int     `json:"slow_health_polls"`
	SlowHealthP50MS float64 `json:"slow_health_p50_ms"`
	SlowHealthP99MS float64 `json:"slow_health_p99_ms"`
	LiveHealthPolls int     `json:"live_health_polls"`
	LiveHealthP50MS float64 `json:"live_health_p50_ms"`
	LiveHealthP99MS float64 `json:"live_health_p99_ms"`
	HealthSpeedup   float64 `json:"health_p99_speedup"`

	// Ingest throughput over HTTP: one event per POST (the per-event
	// synchronization regime) vs 256-event arrays (one admission-ring
	// reservation per array).
	SingleIngestEvents int     `json:"single_ingest_events"`
	SingleIngestEPS    float64 `json:"single_ingest_events_per_sec"`
	ArrayIngestEvents  int     `json:"array_ingest_events"`
	ArrayLen           int     `json:"array_len"`
	ArrayIngestEPS     float64 `json:"array_ingest_events_per_sec"`
	IngestSpeedup      float64 `json:"ingest_speedup"`

	// Live-path telemetry after the run.
	TrackerAudits        uint64 `json:"tracker_audits"`
	TrackerAuditFailures uint64 `json:"tracker_audit_failures"`
	Lambda2Refreshes     uint64 `json:"lambda2_refreshes"`
	Lambda2WarmRefreshes uint64 `json:"lambda2_warm_refreshes"`
}

// scaleReport is the schema of the -scale output (BENCH_PR10.json).
type scaleReport struct {
	Env    obs.Env      `json:"env"`
	Note   string       `json:"note"`
	Points []scalePoint `json:"points"`
}

func percentileMS(durs []time.Duration, p float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Microseconds()) / 1000
}

// ingestHTTP drives clients concurrent streams of conflict-free events
// through POST /v1/events, arrayLen events per request (1 = the per-event
// regime), and returns measured events/sec.
// baseClient offsets the stream identities so successive phases against the
// same engine draw from disjoint node-ID ranges.
func ingestHTTP(url string, client *http.Client, anchors []graph.NodeID, baseClient, clients, perClient, arrayLen int, seed int64) (float64, error) {
	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := adversary.NewClientStream(baseClient+c, anchors, 0.3, 3, seed)
			sent := 0
			for sent < perClient {
				k := arrayLen
				if rest := perClient - sent; k > rest {
					k = rest
				}
				events := make([]server.IngestEvent, k)
				for i := range events {
					ev := stream.Next()
					kind := "insert"
					if ev.Kind == adversary.Delete {
						kind = "delete"
					}
					events[i] = server.IngestEvent{Kind: kind, Node: ev.Node, Neighbors: ev.Neighbors}
				}
				body, err := json.Marshal(events)
				if err != nil {
					errs[c] = err
					return
				}
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errs[c] = err
					return
				}
				var r server.IngestResponse
				err = json.NewDecoder(resp.Body).Decode(&r)
				resp.Body.Close()
				if err != nil {
					errs[c] = err
					return
				}
				if resp.StatusCode != http.StatusOK || r.Applied != k {
					errs[c] = fmt.Errorf("client %d: status %d, applied %d/%d: %s",
						c, resp.StatusCode, r.Applied, k, r.Error)
					return
				}
				sent += k
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(clients*perClient) / time.Since(start).Seconds(), nil
}

// measureScalePoint runs the full before/after protocol at one network size.
func measureScalePoint(stderr io.Writer, n, events, arrayLen int) (scalePoint, error) {
	pt := scalePoint{N: n, ArrayLen: arrayLen}
	progress := func(format string, args ...any) {
		fmt.Fprintf(stderr, "scale n=%d: %s\n", n, fmt.Sprintf(format, args...))
	}

	progress("building %d-node random regular topology", n)
	g0, err := workload.RandomRegular(n, 3, rand.New(rand.NewSource(41)))
	if err != nil {
		return pt, err
	}
	st, err := core.NewState(core.Config{Kappa: 4, Seed: 42}, g0)
	if err != nil {
		return pt, err
	}
	pt.InitialEdges = st.Graph().NumEdges()

	// λ₂ refresh cost: cold on the initial topology, then warm after a small
	// direct churn — the cache carries the Ritz vector across the change
	// exactly as the daemon's refresher does.
	progress("λ₂ cold refresh (90-step Lanczos)")
	cache := live.NewLambda2Cache(43)
	cache.Refresh(spectral.NewCSR(st.Graph()), true, st.Graph().Generation(), 0)
	pt.Lambda2Cold, _, _ = cache.Value()
	pt.Lambda2ColdSeconds = cache.Stats().LastSeconds
	churn := adversary.NewClientStream(99, st.Graph().Nodes()[:16], 0.3, 3, 44)
	for i := 0; i < 64; i++ {
		ev := churn.Next()
		if ev.Kind == adversary.Delete {
			err = st.DeleteNode(ev.Node)
		} else {
			err = st.InsertNode(ev.Node, ev.Neighbors)
		}
		if err != nil {
			return pt, fmt.Errorf("λ₂ churn: %w", err)
		}
	}
	progress("λ₂ warm refresh (32-step, carried Ritz vector)")
	cache.Refresh(spectral.NewCSR(st.Graph()), true, st.Graph().Generation(), 1)
	pt.Lambda2Warm, _, _ = cache.Value()
	pt.Lambda2WarmSeconds = cache.Stats().LastSeconds
	if !cache.Stats().LastWarm {
		return pt, fmt.Errorf("λ₂ refresh after churn did not warm-start")
	}

	anchors := append([]graph.NodeID(nil), g0.Nodes()[:64]...)
	// InvariantBudget keeps the per-tick structural check O(budget) instead
	// of O(n+m) — the sampled mode this report's serving numbers assume.
	cfg := server.Config{QueueDepth: 4 * arrayLen * 4, RefreshEvery: 64, AuditEvery: 0, InvariantBudget: 4096}

	// Before: SlowHealth daemon — clone-and-measure polls, per-event POSTs.
	{
		slowCfg := cfg
		slowCfg.SlowHealth = true
		srv := server.New(st, slowCfg)
		ts := httptest.NewServer(srv.Handler())

		singles := events / 8
		if singles > 2000 {
			singles = 2000
		}
		if singles < 256 {
			singles = 256
		}
		progress("slow path: %d single-event POSTs", singles)
		pt.SingleIngestEvents = singles
		pt.SingleIngestEPS, err = ingestHTTP(ts.URL+"/v1/events", ts.Client(), anchors, 0, 4, singles/4, 1, 45)
		if err != nil {
			ts.Close()
			srv.Close()
			return pt, fmt.Errorf("single-event ingest: %w", err)
		}

		polls := 5_000_000 / n
		if polls < 5 {
			polls = 5
		}
		if polls > 60 {
			polls = 60
		}
		progress("slow path: %d clone-and-measure health polls", polls)
		durs := make([]time.Duration, polls)
		for i := range durs {
			t0 := time.Now()
			if h := srv.Health(); h.Nodes == 0 {
				ts.Close()
				srv.Close()
				return pt, fmt.Errorf("empty slow health snapshot")
			}
			durs[i] = time.Since(t0)
		}
		pt.SlowHealthPolls = polls
		pt.SlowHealthP50MS = percentileMS(durs, 0.50)
		pt.SlowHealthP99MS = percentileMS(durs, 0.99)
		ts.Close()
		if err := srv.Close(); err != nil {
			return pt, err
		}
	}

	// After: live daemon on the same engine — array ingest, tracker polls.
	srv := server.New(st, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// Let the startup refresh (cold Lanczos + stretch trees) land before
	// timing anything: the measured window then reflects steady state, where
	// periodic refreshes warm-start, not the one-off warm-up.
	progress("live path: waiting for λ₂ + stretch caches")
	deadline := time.Now().Add(10 * time.Minute)
	for {
		h := srv.Health()
		if h.Live != nil && h.Live.Lambda2Valid && h.Live.StretchValid {
			break
		}
		if time.Now().After(deadline) {
			return pt, fmt.Errorf("live caches never became valid")
		}
		time.Sleep(50 * time.Millisecond)
	}

	progress("live path: ingesting %d events in %d-event arrays", events, arrayLen)
	pt.ArrayIngestEvents = events
	pt.ArrayIngestEPS, err = ingestHTTP(ts.URL+"/v1/events", ts.Client(), anchors, 4, 4, events/4, arrayLen, 46)
	if err != nil {
		return pt, fmt.Errorf("array ingest: %w", err)
	}

	const livePolls = 2000
	progress("live path: %d tracker health polls", livePolls)
	durs := make([]time.Duration, livePolls)
	for i := range durs {
		t0 := time.Now()
		if h := srv.Health(); h.Nodes == 0 {
			return pt, fmt.Errorf("empty live health snapshot")
		}
		durs[i] = time.Since(t0)
	}
	pt.LiveHealthPolls = livePolls
	pt.LiveHealthP50MS = percentileMS(durs, 0.50)
	pt.LiveHealthP99MS = percentileMS(durs, 0.99)
	if pt.LiveHealthP99MS > 0 {
		pt.HealthSpeedup = pt.SlowHealthP99MS / pt.LiveHealthP99MS
	}
	if pt.SingleIngestEPS > 0 {
		pt.IngestSpeedup = pt.ArrayIngestEPS / pt.SingleIngestEPS
	}

	h := srv.Health()
	if h.Live != nil {
		pt.TrackerAudits = h.Live.Audits
		pt.TrackerAuditFailures = h.Live.AuditFailures
		pt.Lambda2Refreshes = h.Live.Lambda2Refreshes
		pt.Lambda2WarmRefreshes = h.Live.Lambda2WarmRefreshes
	}
	if err := srv.LiveAuditError(); err != nil {
		return pt, err
	}
	return pt, nil
}

// runScale measures every requested size and writes the report; non-zero SLO
// bounds gate the exit code on the largest measured size.
func runScale(stderr io.Writer, sizes string, events int, outPath string, sloHealthP99MS, sloIngestEPS float64) int {
	var ns []int
	for _, f := range strings.Split(sizes, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 256 {
			fmt.Fprintf(stderr, "scale: bad size %q (need integers ≥ 256)\n", f)
			return 2
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		fmt.Fprintln(stderr, "scale: no sizes given (e.g. -scale 10000,100000)")
		return 2
	}

	report := scaleReport{
		Env: obs.CaptureEnv(),
		Note: "before/after per size: SlowHealth clone-and-measure vs incremental tracker polls, " +
			"single-event POSTs vs 256-event arrays, cold (90-step) vs warm-started (32-step) λ₂ refresh; " +
			"single-CPU hosts serialize the 4 ingest clients, so events_per_sec there is a floor",
	}
	const arrayLen = 256
	for _, n := range ns {
		pt, err := measureScalePoint(stderr, n, events, arrayLen)
		if err != nil {
			fmt.Fprintf(stderr, "scale n=%d: %v\n", n, err)
			return 1
		}
		fmt.Fprintf(stderr,
			"scale n=%d: health p99 %.3fms live vs %.1fms slow (%.0fx); ingest %.0f ev/s arrays vs %.0f ev/s singles (%.1fx); λ₂ %.2fs cold vs %.2fs warm\n",
			n, pt.LiveHealthP99MS, pt.SlowHealthP99MS, pt.HealthSpeedup,
			pt.ArrayIngestEPS, pt.SingleIngestEPS, pt.IngestSpeedup,
			pt.Lambda2ColdSeconds, pt.Lambda2WarmSeconds)
		report.Points = append(report.Points, pt)
	}

	if outPath != "" {
		if err := writeJSON(outPath, report); err != nil {
			fmt.Fprintf(stderr, "scale: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %s\n", outPath)
	}

	// SLO gates run against the largest size measured.
	last := report.Points[len(report.Points)-1]
	failed := false
	if sloHealthP99MS > 0 && last.LiveHealthP99MS > sloHealthP99MS {
		fmt.Fprintf(stderr, "scale: SLO VIOLATION: live health p99 %.3fms > %.3fms at n=%d\n",
			last.LiveHealthP99MS, sloHealthP99MS, last.N)
		failed = true
	}
	if sloIngestEPS > 0 && last.ArrayIngestEPS < sloIngestEPS {
		fmt.Fprintf(stderr, "scale: SLO VIOLATION: array ingest %.0f ev/s < %.0f ev/s at n=%d\n",
			last.ArrayIngestEPS, sloIngestEPS, last.N)
		failed = true
	}
	if last.TrackerAuditFailures > 0 {
		fmt.Fprintf(stderr, "scale: SLO VIOLATION: %d tracker audit failures\n", last.TrackerAuditFailures)
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}
