package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExploreBasic(t *testing.T) {
	code, out, errOut := runCLI(t, "-n", "24", "-d", "2", "-samples", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "expanders (normalized lambda2 >= 0.1): 3/3") {
		t.Fatalf("expected all samples to be expanders:\n%s", out)
	}
}

func TestExploreWithChurn(t *testing.T) {
	code, out, errOut := runCLI(t, "-n", "16", "-d", "3", "-samples", "2", "-churn", "50")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "mean normalized lambda2") {
		t.Fatalf("missing summary:\n%s", out)
	}
}

func TestExploreBadParams(t *testing.T) {
	if code, _, _ := runCLI(t, "-n", "2"); code != 2 {
		t.Fatal("n < 3 should fail")
	}
	if code, _, _ := runCLI(t, "-bogus"); code != 2 {
		t.Fatal("bad flag should return 2")
	}
}
