// Command hgraph-explore samples random Law–Siu H-graphs (the paper's
// expander substrate, §5) and reports their structural and spectral
// properties: degree range, algebraic connectivity, conductance bounds, and
// the fraction that qualify as expanders — an interactive view of Theorems
// 3 and 4.
//
// Usage:
//
//	hgraph-explore -n 128 -d 3 -samples 25
//	hgraph-explore -n 64 -d 2 -churn 500   # apply churn, then re-measure
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"github.com/xheal/xheal/internal/cuts"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/hgraph"
	"github.com/xheal/xheal/internal/spectral"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hgraph-explore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n       = fs.Int("n", 64, "vertex count")
		d       = fs.Int("d", 3, "Hamilton cycles (degree = 2d)")
		samples = fs.Int("samples", 20, "independent samples")
		churn   = fs.Int("churn", 0, "insert/delete operations to apply before measuring")
		seed    = fs.Int64("seed", 1, "randomness seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *n < hgraph.MinSize || *d < 1 || *samples < 1 {
		fmt.Fprintln(stderr, "need n >= 3, d >= 1, samples >= 1")
		return 2
	}

	fmt.Fprintf(stdout, "random H-graphs: n=%d d=%d (2d-regular), %d samples, churn=%d\n",
		*n, *d, *samples, *churn)
	fmt.Fprintf(stdout, "%-8s %-8s %-8s %-10s %-10s %-10s\n",
		"sample", "minDeg", "maxDeg", "lambda2", "lambda2n", "sweep-phi")

	measureRng := rand.New(rand.NewSource(*seed ^ 0x777))
	expanders := 0
	meanLam := 0.0
	for s := 0; s < *samples; s++ {
		rng := rand.New(rand.NewSource(*seed + int64(s)*1000))
		vertices := make([]graph.NodeID, *n)
		for i := range vertices {
			vertices[i] = graph.NodeID(i)
		}
		h, err := hgraph.New(*d, vertices, rng)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		next := graph.NodeID(1 << 20)
		for c := 0; c < *churn; c++ {
			if h.Size() > hgraph.MinSize && rng.Intn(2) == 0 {
				members := h.Members()
				if err := h.Delete(members[rng.Intn(len(members))]); err != nil {
					fmt.Fprintln(stderr, err)
					return 1
				}
			} else {
				if err := h.Insert(next); err != nil {
					fmt.Fprintln(stderr, err)
					return 1
				}
				next++
			}
		}
		if err := h.Validate(); err != nil {
			fmt.Fprintf(stderr, "sample %d: structure invalid: %v\n", s, err)
			return 1
		}
		g := h.Graph()
		lam := spectral.AlgebraicConnectivity(g, measureRng)
		lamN := spectral.NormalizedAlgebraicConnectivity(g, measureRng)
		phi, _ := cuts.SweepCut(g, measureRng)
		fmt.Fprintf(stdout, "%-8d %-8d %-8d %-10.4f %-10.4f %-10.4f\n",
			s, g.MinDegree(), g.MaxDegree(), lam, lamN, phi)
		meanLam += lamN
		if lamN >= 0.1 {
			expanders++
		}
	}
	fmt.Fprintf(stdout, "\nexpanders (normalized lambda2 >= 0.1): %d/%d, mean normalized lambda2 = %.4f\n",
		expanders, *samples, meanLam/float64(*samples))
	fmt.Fprintln(stdout, "paper Theorem 4: a random 2d-regular H-graph is an expander w.h.p. for d >= 2")
	return 0
}
