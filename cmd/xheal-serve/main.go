// Command xheal-serve runs the Xheal network-maintenance daemon: a
// long-lived server that owns a self-healing network, ingests insert/delete
// events from many concurrent clients over HTTP, coalesces everything that
// arrives during a tick into one batched timestep, and serves live health
// snapshots plus Prometheus-style metrics. Every applied batch is appended
// to an internal/trace event log, so any serving run replays byte-for-byte
// through `xheal-sim -replay <log>`.
//
// Usage:
//
//	xheal-serve -addr :8080 -workload regular -n 128 -event-log run.log
//	xheal-serve -engine dist -workload er -n 64            # host the §5 engine
//	xheal-serve -data-dir /var/lib/xheal                   # durable: checkpoints + segmented log, crash recovery
//	xheal-serve -smoke                                     # CI smoke: 100 events end-to-end
//	xheal-serve -loadgen -clients 8 -events 500 -bench-out BENCH_PR4.json
//	xheal-serve -scenario flashcrowd -scenario-out report.json   # chaos scenario over HTTP with SLO gate
//	xheal-serve -scenario readmix -engine dist -soak-minutes 10  # durable long soak with recovery probes
//	xheal-serve -crashloop 10                              # SIGKILL/restart harness: zero acknowledged loss
//
// Endpoints:
//
//	POST /v1/events  {"kind":"insert","node":9000,"neighbors":[0,1]} or an array
//	GET  /v1/health  health snapshot (MeasureFast + serving counters) as JSON
//	GET  /metrics    Prometheus text exposition
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"net/http/pprof"

	"github.com/xheal/xheal/internal/checkpoint"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/dist"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/obs"
	"github.com/xheal/xheal/internal/scenario"
	"github.com/xheal/xheal/internal/server"
	"github.com/xheal/xheal/internal/trace"
	"github.com/xheal/xheal/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options collects the parsed flags shared by the three modes.
type options struct {
	addr     string
	engine   string
	wl       string
	n        int
	kappa    int
	seed     int64
	tick     time.Duration
	queue    int
	maxBatch int
	parallel int
	eventLog string
	spanLog  string
	pprof    bool

	dataDir        string
	ckptEvery      int
	archiveLog     bool
	verifyRecovery bool

	slowHealth   bool
	refreshEvery int
	stretchSrcs  int
	auditEvery   int
	invBudget    int

	smoke        bool
	loadgen      bool
	clients      int
	events       int
	deleteBias   float64
	attach       int
	benchOut     string
	sloP99TickMS float64

	scenarioName string
	scenarioOut  string
	soakMinutes  float64
	wave         int
	rate         float64
	sloMaxQueue  int

	crashloop     int
	crashInterval time.Duration

	// set records which flags were passed explicitly, so scenario mode can
	// tell a deliberate -n/-events/-seed override from a flag default.
	set map[string]bool
}

// flagSet reports whether the named flag was passed on the command line.
func (o options) flagSet(name string) bool { return o.set[name] }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xheal-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "HTTP listen address")
	fs.StringVar(&o.engine, "engine", "seq", "healing engine: seq (Algorithm 3.1 reference) or dist (§5 protocol)")
	fs.StringVar(&o.wl, "workload", "regular", "initial topology: "+fmt.Sprint(workload.Names()))
	fs.IntVar(&o.n, "n", 64, "initial node count")
	fs.IntVar(&o.kappa, "kappa", 4, "expander degree parameter (even)")
	fs.Int64Var(&o.seed, "seed", 1, "randomness seed (healing decisions; replay must reuse it)")
	fs.DurationVar(&o.tick, "tick", 2*time.Millisecond, "batch coalescing window (0 = apply immediately)")
	fs.IntVar(&o.queue, "queue", 1024, "ingest queue depth (backpressure bound)")
	fs.IntVar(&o.maxBatch, "max-batch", 256, "max events per batched timestep")
	fs.IntVar(&o.parallel, "parallelism", 1, "seq engine: heal disjoint wounds of each tick concurrently on this many workers (1 = serial; byte-identical results either way)")
	fs.StringVar(&o.eventLog, "event-log", "", "append applied events to this trace log (replayable via xheal-sim -replay)")
	fs.StringVar(&o.spanLog, "spanlog", "", "write one JSONL span per repaired wound to this file (enables per-wound tracing)")
	fs.BoolVar(&o.pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/ on the serving mux")
	fs.StringVar(&o.dataDir, "data-dir", "", "durable mode: recover state from and persist checkpoints + segmented event log under this directory")
	fs.IntVar(&o.ckptEvery, "checkpoint-every", 32, "durable mode: applied ticks between checkpoints")
	fs.BoolVar(&o.archiveLog, "archive-log", false, "durable mode: move compacted log segments to <data-dir>/log/archive instead of deleting (keeps from-genesis history)")
	fs.BoolVar(&o.verifyRecovery, "verify-recovery", false, "durable mode: at startup, assert the recovered state is byte-identical to a from-genesis replay of the archived log")
	fs.BoolVar(&o.slowHealth, "slow-health", false, "disable the incremental metrics layer: health polls clone and measure the graph (pre-PR-10 behavior)")
	fs.IntVar(&o.refreshEvery, "refresh-every", 32, "applied ticks between background refreshes of cached connectivity/lambda2/stretch")
	fs.IntVar(&o.stretchSrcs, "stretch-sources", 4, "BFS source reservoir size for the sampled-stretch estimate")
	fs.IntVar(&o.auditEvery, "audit-every", 0, "cross-check the incremental metrics against a full recomputation every this many ticks (0 = off)")
	fs.IntVar(&o.invBudget, "invariant-budget", 0, "sampled invariant checking: nodes/edges/clouds examined per check, rotating over the whole structure (0 = full sweep)")
	fs.BoolVar(&o.smoke, "smoke", false, "self-test: start the daemon, ingest 100 events over HTTP, verify, shut down")
	fs.BoolVar(&o.loadgen, "loadgen", false, "load generator: hammer an in-process daemon with concurrent clients")
	fs.IntVar(&o.clients, "clients", 8, "loadgen: concurrent clients")
	fs.IntVar(&o.events, "events", 500, "loadgen: events per client")
	fs.Float64Var(&o.deleteBias, "delete-bias", 0.35, "loadgen: per-event probability of deleting an owned node")
	fs.IntVar(&o.attach, "attach", 3, "loadgen: max attachments per insertion")
	fs.StringVar(&o.benchOut, "bench-out", "", "loadgen: write throughput results to this JSON file (BENCH_PR4.json)")
	fs.Float64Var(&o.sloP99TickMS, "slo-p99-tick-ms", 0, "loadgen: fail unless p99 tick latency is at most this many ms (0 = no bound)")
	fs.StringVar(&o.scenarioName, "scenario", "", "chaos scenario mode: run this named scenario over HTTP with SLO assertions (valid: "+strings.Join(scenario.Names(), " ")+")")
	fs.StringVar(&o.scenarioOut, "scenario-out", "", "scenario mode: write the machine-readable pass/fail report to this JSON file")
	fs.Float64Var(&o.soakMinutes, "soak-minutes", 0, "scenario mode: run a durable long soak for this many minutes with periodic checkpoint/recovery-identity probes (0 = finite run of the scenario's event budget)")
	fs.IntVar(&o.wave, "wave", 0, "scenario mode: events per burst wave (0 = scenario default)")
	fs.Float64Var(&o.rate, "rate", 0, "scenario mode: target sustained events/sec (0 = scenario default)")
	fs.IntVar(&o.sloMaxQueue, "slo-max-queue", 0, "scenario mode: fail if the sampled ingest queue depth ever exceeds this (0 = the -queue bound)")
	fs.IntVar(&o.crashloop, "crashloop", 0, "crash harness: run this many SIGKILL/restart cycles against a child daemon under load, then verify zero acknowledged loss")
	fs.DurationVar(&o.crashInterval, "crash-interval", 150*time.Millisecond, "crashloop: load duration before each SIGKILL")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	o.set = make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { o.set[f.Name] = true })

	switch {
	case o.crashloop > 0:
		return runCrashloop(o, stdout, stderr)
	case o.scenarioName != "":
		return runScenario(o, stdout, stderr)
	case o.smoke:
		o.clients, o.events = 1, 100
		return runLoad(o, stdout, stderr, true)
	case o.loadgen:
		return runLoad(o, stdout, stderr, false)
	default:
		return serve(o, stdout, stderr)
	}
}

// daemon is one assembled serving stack.
type daemon struct {
	srv      *server.Server
	eng      server.Engine // the engine the server owns (read only after srv.Close)
	g0       *graph.Graph
	logPath  string
	spanPath string
	rec      *obs.Recorder
	spanW    *obs.SpanWriter
	dist     *dist.Engine // non-nil when -engine dist, for cost-ledger cross-checks
	cleanup  func()

	// Durable-mode facts (nil/empty otherwise): what startup recovery did,
	// and whether the recovery-identity check ran and passed.
	recovered *server.Recovered
	verified  bool
}

// engineName maps the -engine flag to the checkpoint/recovery engine name.
func engineName(engine string) (string, error) {
	switch engine {
	case "seq":
		return server.EngineCore, nil
	case "dist":
		return server.EngineDist, nil
	default:
		return "", fmt.Errorf("unknown engine %q (valid: seq dist)", engine)
	}
}

// handler assembles the HTTP surface: the serving API, plus the pprof
// endpoints when -pprof is set.
func (d *daemon) handler(o options) http.Handler {
	if !o.pprof {
		return d.srv.Handler()
	}
	mux := http.NewServeMux()
	mux.Handle("/", d.srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// buildDaemon constructs the initial topology, the chosen engine, the event
// log, and the server.
func buildDaemon(o options) (*daemon, error) {
	g0, err := workload.ByName(o.wl, o.n, rand.New(rand.NewSource(o.seed)))
	if err != nil {
		return nil, err
	}
	engName, err := engineName(o.engine)
	if err != nil {
		return nil, err
	}

	cfg := server.Config{
		Tick:            o.tick,
		QueueDepth:      o.queue,
		MaxBatch:        o.maxBatch,
		Parallelism:     o.parallel,
		SlowHealth:      o.slowHealth,
		RefreshEvery:    o.refreshEvery,
		StretchSources:  o.stretchSrcs,
		AuditEvery:      o.auditEvery,
		InvariantBudget: o.invBudget,
	}
	var eng server.Engine
	var closeEng func()
	var distEng *dist.Engine
	var recovered *server.Recovered
	verified := false
	var logFile *os.File
	if o.dataDir != "" {
		// Durable mode: recover whatever a previous incarnation left behind
		// (newest checkpoint + log-tail replay), then serve with periodic
		// checkpoints over a fresh checkpoint-anchored log segment.
		if o.eventLog != "" {
			return nil, fmt.Errorf("-event-log and -data-dir are mutually exclusive (the data dir owns a segmented log)")
		}
		store, err := checkpoint.NewFileStore(filepath.Join(o.dataDir, "checkpoints"), 3)
		if err != nil {
			return nil, err
		}
		logDir := filepath.Join(o.dataDir, "log")
		rec, err := server.Recover(server.RecoverConfig{
			Store: store, LogDir: logDir,
			Engine: engName, Kappa: o.kappa, Seed: o.seed, Genesis: g0,
		})
		if err != nil {
			return nil, fmt.Errorf("recover: %w", err)
		}
		eng = rec.Engine
		recovered = rec
		if de, ok := rec.Engine.(*dist.Engine); ok {
			distEng = de
			closeEng = de.Close
		}
		fl, err := trace.OpenFileLog(logDir, g0, rec.Tick, rec.Events, "")
		if err != nil {
			if closeEng != nil {
				closeEng()
			}
			return nil, err
		}
		if o.verifyRecovery {
			if err := server.VerifyRecovery(eng, engName, logDir, o.kappa, o.seed); err != nil {
				fl.Close()
				if closeEng != nil {
					closeEng()
				}
				return nil, fmt.Errorf("verify recovery: %w", err)
			}
			verified = true
		}
		cfg.Log = fl
		cfg.Checkpoints = store
		cfg.CheckpointEvery = o.ckptEvery
		cfg.ArchiveLog = o.archiveLog
		cfg.EngineName = engName
		cfg.Seed = o.seed
		cfg.GenesisDigest = server.GenesisDigest(g0)
		cfg.Resume = server.Resume{Tick: rec.Tick, Events: rec.Events}
	} else {
		switch o.engine {
		case "seq":
			st, err := core.NewState(core.Config{Kappa: o.kappa, Seed: o.seed}, g0)
			if err != nil {
				return nil, err
			}
			eng = st
		case "dist":
			de, err := dist.NewEngine(dist.Config{Kappa: o.kappa, Seed: o.seed}, g0)
			if err != nil {
				return nil, err
			}
			eng = de
			distEng = de
			closeEng = de.Close
		}
		if o.eventLog != "" {
			logFile, err = os.Create(o.eventLog)
			if err != nil {
				return nil, err
			}
			lw, err := trace.NewLogWriter(logFile, g0)
			if err != nil {
				logFile.Close()
				return nil, err
			}
			cfg.Log = lw
		}
	}
	var spanFile *os.File
	var spanW *obs.SpanWriter
	if o.spanLog != "" {
		spanFile, err = os.Create(o.spanLog)
		if err != nil {
			if logFile != nil {
				logFile.Close()
			}
			return nil, err
		}
		spanW = obs.NewSpanWriter(spanFile)
		cfg.Recorder = obs.NewRecorder(spanW, obs.MustHistogram(obs.LatencyBuckets()))
	}
	d := &daemon{
		srv:       server.New(eng, cfg),
		eng:       eng,
		g0:        g0,
		logPath:   o.eventLog,
		spanPath:  o.spanLog,
		rec:       cfg.Recorder,
		spanW:     spanW,
		dist:      distEng,
		recovered: recovered,
		verified:  verified,
		cleanup: func() {
			if spanW != nil {
				_ = spanW.Close()
				spanFile.Close()
			}
			if logFile != nil {
				logFile.Close()
			}
			if closeEng != nil {
				closeEng()
			}
		},
	}
	return d, nil
}

// closeSpanLog flushes and closes the span log early (before cleanup), so a
// verifier can read it back. Idempotent via SpanWriter.Close.
func (d *daemon) closeSpanLog() error {
	if d.spanW == nil {
		return nil
	}
	return d.spanW.Close()
}

// serve is the daemon mode: listen until SIGINT/SIGTERM, then drain and
// exit.
func serve(o options, stdout, stderr io.Writer) int {
	d, err := buildDaemon(o)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer d.cleanup()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	httpSrv := &http.Server{
		Handler: d.handler(o),
		// Bound slow/stalled request reads so one bad client can't pin a
		// connection forever. No WriteTimeout: a Submit legitimately blocks
		// until its tick applies it, which -tick bounds on its own.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
	}
	fmt.Fprintf(stdout, "xheal-serve: engine=%s workload=%s n=%d m=%d kappa=%d seed=%d tick=%v\n",
		o.engine, o.wl, d.g0.NumNodes(), d.g0.NumEdges(), o.kappa, o.seed, o.tick)
	if rec := d.recovered; rec != nil {
		source := "genesis"
		if rec.FromCheckpoint {
			source = "checkpoint"
		}
		fmt.Fprintf(stdout, "recovered: source=%s events=%d tick=%d replayed=%d torn_tail=%v\n",
			source, rec.Events, rec.Tick, rec.Replayed, rec.TornTail)
		if d.verified {
			fmt.Fprintln(stdout, "recovery identity verified against from-genesis replay")
		}
		fmt.Fprintf(stdout, "data dir: %s (checkpoint every %d ticks, archive=%v)\n",
			o.dataDir, o.ckptEvery, o.archiveLog)
	}
	fmt.Fprintf(stdout, "listening on http://%s (POST /v1/events, GET /v1/health, GET /metrics)\n", ln.Addr())
	if o.eventLog != "" {
		fmt.Fprintf(stdout, "event log: %s (replay: xheal-sim -replay %s -kappa %d -seed %d)\n",
			o.eventLog, o.eventLog, o.kappa, o.seed)
	}
	if o.spanLog != "" {
		fmt.Fprintf(stdout, "span log: %s (one JSONL span per repaired wound)\n", o.spanLog)
	}
	if o.pprof {
		fmt.Fprintf(stdout, "pprof: http://%s/debug/pprof/\n", ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case <-ctx.Done():
		fmt.Fprintln(stdout, "shutting down: draining queue...")
	case err := <-errc:
		fmt.Fprintln(stderr, err)
		return 1
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutdownCtx)
	if err := d.srv.Close(); err != nil {
		fmt.Fprintf(stderr, "event log: %v\n", err)
		return 1
	}
	c := d.srv.Counters()
	fmt.Fprintf(stdout, "served %d events in %d ticks (%d rejected, %d deferred)\n",
		c.EventsApplied, c.Ticks, c.EventsRejected, c.EventsDeferred)
	if o.dataDir != "" {
		fmt.Fprintf(stdout, "checkpoints: %d saved, %d errors, final watermark tick=%d events=%d\n",
			c.Checkpoints, c.CheckpointErrors, c.LastCheckpointTick, c.LastCheckpointEvents)
	}
	if d.rec != nil {
		fmt.Fprintf(stdout, "spans: %d emitted, %d dropped (%s)\n",
			d.rec.Spans(), d.rec.Dropped(), d.spanPath)
	}
	return 0
}
