package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScenarioFiniteMode drives a trimmed flashcrowd run over real HTTP and
// checks the SLO report: everything applied, nothing rejected, replay and
// byte identity both green.
func TestScenarioFiniteMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scenario", "flashcrowd", "-events", "96", "-rate", "4000",
		"-scenario-out", out,
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("scenario exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "scenario flashcrowd: PASS") {
		t.Fatalf("missing verdict:\n%s", stdout.String())
	}
	var rep scenarioReport
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || len(rep.Failures) != 0 {
		t.Fatalf("report not passing: %+v", rep)
	}
	if rep.EventsTotal != 96 || rep.Rejected != 0 {
		t.Fatalf("events=%d rejected=%d, want 96/0", rep.EventsTotal, rep.Rejected)
	}
	if !rep.ReplayIdentical || !rep.ByteIdentical {
		t.Fatalf("identity checks: replay=%v byte=%v", rep.ReplayIdentical, rep.ByteIdentical)
	}
	if rep.Soak {
		t.Fatal("finite run flagged as soak")
	}
}

// TestScenarioFiniteModeParallelDist exercises the scenario driver against
// the other engine at parallelism > 1 — the production-shaped path.
func TestScenarioFiniteModeParallelDist(t *testing.T) {
	if testing.Short() {
		t.Skip("dist scenario run is the slow path")
	}
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scenario", "readmix", "-engine", "dist", "-parallelism", "4",
		"-events", "64", "-rate", "4000",
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("dist scenario exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "scenario readmix: PASS") {
		t.Fatalf("missing verdict:\n%s", stdout.String())
	}
}

// TestScenarioSoakMode runs a few seconds of durable soak: at least one
// recovery probe must fire and the final recovery-identity check must pass.
func TestScenarioSoakMode(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is the slow path")
	}
	out := filepath.Join(t.TempDir(), "soak.json")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scenario", "slowdrip", "-soak-minutes", "0.08", "-rate", "400",
		"-data-dir", t.TempDir(), "-scenario-out", out,
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("soak exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	var rep scenarioReport
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("soak failed: %v", rep.Failures)
	}
	if !rep.Soak || rep.Probes == nil || rep.Probes.Probes == 0 {
		t.Fatalf("soak report missing probes: %+v", rep.Probes)
	}
	if rep.Probes.Failures != 0 {
		t.Fatalf("%d probe failures (first: %s)", rep.Probes.Failures, rep.Probes.FirstError)
	}
	if !rep.ReplayIdentical || !rep.ByteIdentical {
		t.Fatalf("recovery identity: replay=%v byte=%v", rep.ReplayIdentical, rep.ByteIdentical)
	}
}

// TestScenarioFlagValidation pins the mode's flag contract.
func TestScenarioFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenario", "nope"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown scenario accepted")
	}
	stderr.Reset()
	if code := run([]string{"-scenario", "flashcrowd", "-data-dir", t.TempDir()}, &stdout, &stderr); code == 0 {
		t.Fatal("finite scenario accepted -data-dir")
	}
	if !strings.Contains(stderr.String(), "-soak-minutes") {
		t.Fatalf("unhelpful -data-dir error: %s", stderr.String())
	}
	stderr.Reset()
	args := []string{"-scenario", "flashcrowd", "-soak-minutes", "0.05", "-event-log", filepath.Join(t.TempDir(), "x.log")}
	if code := run(args, &stdout, &stderr); code == 0 {
		t.Fatal("soak accepted -event-log")
	}
}
