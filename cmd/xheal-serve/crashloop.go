package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/xheal/xheal/internal/checkpoint"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/server"
	"github.com/xheal/xheal/internal/workload"
)

// This file is the crash/fault-injection harness behind -crashloop N: the
// parent re-execs itself as a durable-mode child daemon, hammers it with
// concurrent HTTP clients, SIGKILLs it mid-load, restarts it, and repeats —
// asserting after every restart that no acknowledged event was lost and that
// the recovery replay stays inside its checkpoint-spacing bound. The last
// cycle shuts down gracefully (SIGTERM), and the parent then recovers the
// data directory in-process and checks the final state: every acknowledged
// insert present, every acknowledged delete gone, engine invariants clean,
// and the recovered state byte-identical to a from-genesis replay of the
// archived log.
//
// Acknowledgement bookkeeping is three-way. A 200 response means the event
// was applied and durably logged (log-before-ack), so it joins the
// acked-alive or acked-deleted set and MUST survive. A failed request —
// connection reset by the kill, timeout, 503 backpressure — proves nothing
// either way (the event may have applied just before the crash), so its node
// moves to the uncertain set and is excluded from both assertions.

// ackBook tracks what the load clients know about the run, across every
// crash cycle.
type ackBook struct {
	mu           sync.Mutex
	next         graph.NodeID
	ackedAlive   map[graph.NodeID]struct{}
	ackedDeleted map[graph.NodeID]struct{}
	uncertain    map[graph.NodeID]struct{}
	acks         uint64 // total acknowledged events (inserts + deletes)
	attempts     uint64
}

func newAckBook(first graph.NodeID) *ackBook {
	return &ackBook{
		next:         first,
		ackedAlive:   make(map[graph.NodeID]struct{}),
		ackedDeleted: make(map[graph.NodeID]struct{}),
		uncertain:    make(map[graph.NodeID]struct{}),
	}
}

func (b *ackBook) alloc() graph.NodeID {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.next
	b.next++
	b.attempts++
	return n
}

// reserveAlive removes and returns one acknowledged-alive node, so no two
// clients race to delete the same node (the loser's rejection would wrongly
// look like uncertainty).
func (b *ackBook) reserveAlive(rng *rand.Rand) (graph.NodeID, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.ackedAlive) == 0 {
		return 0, false
	}
	i := rng.Intn(len(b.ackedAlive))
	for n := range b.ackedAlive {
		if i == 0 {
			delete(b.ackedAlive, n)
			b.attempts++
			return n, true
		}
		i--
	}
	return 0, false
}

func (b *ackBook) settle(n graph.NodeID, set *map[graph.NodeID]struct{}, acked bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	(*set)[n] = struct{}{}
	if acked {
		b.acks++
	}
}

func (b *ackBook) counts() (alive, deleted, uncertain int, acks uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.ackedAlive), len(b.ackedDeleted), len(b.uncertain), b.acks
}

// client generates load until ctx is cancelled: fresh-node insertions
// attached to initial anchor nodes, and deletions of acknowledged-alive
// nodes. Only anchors are used as attachment points because the clients
// never delete them, so the neighbors of every insert provably exist.
func (b *ackBook) client(ctx context.Context, base string, rng *rand.Rand, anchors []graph.NodeID, deleteBias float64, attach int) {
	hc := &http.Client{Timeout: 5 * time.Second}
	for ctx.Err() == nil {
		if rng.Float64() < deleteBias {
			if node, ok := b.reserveAlive(rng); ok {
				ev := server.IngestEvent{Kind: "delete", Node: node}
				if postOne(ctx, hc, base, ev) == nil {
					b.settle(node, &b.ackedDeleted, true)
				} else {
					b.settle(node, &b.uncertain, false)
				}
				continue
			}
		}
		node := b.alloc()
		k := 1 + rng.Intn(attach)
		if k > len(anchors) {
			k = len(anchors)
		}
		nbrs := make([]graph.NodeID, 0, k)
		for _, i := range rng.Perm(len(anchors))[:k] {
			nbrs = append(nbrs, anchors[i])
		}
		ev := server.IngestEvent{Kind: "insert", Node: node, Neighbors: nbrs}
		if postOne(ctx, hc, base, ev) == nil {
			b.settle(node, &b.ackedAlive, true)
		} else {
			b.settle(node, &b.uncertain, false)
		}
	}
}

func postOne(ctx context.Context, hc *http.Client, base string, ev server.IngestEvent) error {
	body, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/events", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return nil
}

// childLines echoes every child stdout line to w (prefixed, for debugging)
// and forwards it on the returned channel, closed at EOF.
func childLines(r io.Reader, w io.Writer) <-chan string {
	ch := make(chan string, 64)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintf(w, "  [child] %s\n", line)
			ch <- line
		}
	}()
	return ch
}

func awaitLine(lines <-chan string, prefix string, timeout time.Duration) (string, error) {
	deadline := time.After(timeout)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				return "", fmt.Errorf("child exited before printing %q", prefix)
			}
			if strings.HasPrefix(line, prefix) {
				return line, nil
			}
		case <-deadline:
			return "", fmt.Errorf("timed out waiting for child to print %q", prefix)
		}
	}
}

func runCrashloop(o options, stdout, stderr io.Writer) int {
	if err := crashloop(o, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "crashloop: FAIL:", err)
		return 1
	}
	return 0
}

func crashloop(o options, stdout, stderr io.Writer) error {
	engName, err := engineName(o.engine)
	if err != nil {
		return err
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	g0, err := workload.ByName(o.wl, o.n, rand.New(rand.NewSource(o.seed)))
	if err != nil {
		return err
	}
	anchors := g0.Nodes()
	dir := o.dataDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "xheal-crashloop-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	// Worst-case recovery tail: the log is rotated at every checkpoint, so at
	// most checkpoint-every ticks of at most max-batch events each are ever
	// uncovered by a checkpoint.
	maxReplay := o.ckptEvery * o.maxBatch
	clients := o.clients
	if clients < 1 {
		clients = 1
	}
	book := newAckBook(900000)
	fmt.Fprintf(stdout, "crashloop: %d cycles x %v load, engine=%s, %d clients, data dir %s\n",
		o.crashloop, o.crashInterval, o.engine, clients, dir)

	for cycle := 1; cycle <= o.crashloop; cycle++ {
		cmd := exec.Command(exe,
			"-addr", "127.0.0.1:0",
			"-engine", o.engine,
			"-workload", o.wl,
			"-n", fmt.Sprint(o.n),
			"-kappa", fmt.Sprint(o.kappa),
			"-seed", fmt.Sprint(o.seed),
			"-tick", o.tick.String(),
			"-queue", fmt.Sprint(o.queue),
			"-max-batch", fmt.Sprint(o.maxBatch),
			"-data-dir", dir,
			"-checkpoint-every", fmt.Sprint(o.ckptEvery),
			"-archive-log",
			"-verify-recovery",
		)
		cmd.Stderr = stderr
		outPipe, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		lines := childLines(outPipe, stderr)
		fail := func(err error) error {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return fmt.Errorf("cycle %d/%d: %w", cycle, o.crashloop, err)
		}

		recLine, err := awaitLine(lines, "recovered: ", 120*time.Second)
		if err != nil {
			return fail(err)
		}
		var source string
		var events, tick uint64
		var replayed int
		var torn bool
		if _, err := fmt.Sscanf(recLine, "recovered: source=%s events=%d tick=%d replayed=%d torn_tail=%t",
			&source, &events, &tick, &replayed, &torn); err != nil {
			return fail(fmt.Errorf("parse %q: %w", recLine, err))
		}
		_, _, _, acks := book.counts()
		if events < acks {
			return fail(fmt.Errorf("recovered watermark %d events < %d acknowledged: acknowledged events were lost", events, acks))
		}
		if replayed > maxReplay {
			return fail(fmt.Errorf("recovery replayed %d tail events, checkpoint spacing bounds it at %d", replayed, maxReplay))
		}
		lsnLine, err := awaitLine(lines, "listening on http://", 60*time.Second)
		if err != nil {
			return fail(err)
		}
		hostport := strings.TrimPrefix(strings.Fields(lsnLine)[2], "http://")
		go func() {
			for range lines {
			}
		}()

		loadCtx, cancelLoad := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(o.seed + int64(cycle*1000+i)))
				book.client(loadCtx, "http://"+hostport, rng, anchors, o.deleteBias, o.attach)
			}(i)
		}
		time.Sleep(o.crashInterval)

		if cycle < o.crashloop {
			// Crash while the load is still in flight: acknowledged events
			// must survive, in-flight ones become uncertain.
			_ = cmd.Process.Kill()
			cancelLoad()
			wg.Wait()
			_ = cmd.Wait()
			alive, deleted, uncertain, acks := book.counts()
			fmt.Fprintf(stdout, "cycle %d/%d: recovered %d events (replayed %d, %s), SIGKILL; acked %d (%d alive, %d deleted), %d uncertain\n",
				cycle, o.crashloop, events, replayed, source, acks, alive, deleted, uncertain)
		} else {
			cancelLoad()
			wg.Wait()
			if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
				return fail(err)
			}
			if err := cmd.Wait(); err != nil {
				return fmt.Errorf("cycle %d/%d: graceful shutdown: %w", cycle, o.crashloop, err)
			}
			fmt.Fprintf(stdout, "cycle %d/%d: graceful SIGTERM shutdown\n", cycle, o.crashloop)
		}
		cancelLoad()
	}

	// Final in-process verification against whatever the last incarnation
	// left on disk.
	store, err := checkpoint.NewFileStore(filepath.Join(dir, "checkpoints"), 3)
	if err != nil {
		return err
	}
	logDir := filepath.Join(dir, "log")
	rec, err := server.Recover(server.RecoverConfig{
		Store: store, LogDir: logDir,
		Engine: engName, Kappa: o.kappa, Seed: o.seed, Genesis: g0.Clone(),
	})
	if err != nil {
		return fmt.Errorf("final recovery: %w", err)
	}
	defer func() {
		if c, ok := rec.Engine.(interface{ Close() }); ok {
			c.Close()
		}
	}()
	alive, deleted, uncertain, acks := book.counts()
	if rec.Events < acks {
		return fmt.Errorf("final state holds %d events < %d acknowledged: acknowledged events were lost", rec.Events, acks)
	}
	g := rec.Engine.Graph()
	book.mu.Lock()
	for n := range book.ackedAlive {
		if !g.HasNode(n) {
			book.mu.Unlock()
			return fmt.Errorf("acknowledged insert of node %d was lost", n)
		}
	}
	for n := range book.ackedDeleted {
		if g.HasNode(n) {
			book.mu.Unlock()
			return fmt.Errorf("acknowledged delete of node %d was lost (node still present)", n)
		}
	}
	book.mu.Unlock()
	if err := rec.Engine.CheckInvariants(); err != nil {
		return fmt.Errorf("final state invariants: %w", err)
	}
	if err := server.VerifyRecovery(rec.Engine, engName, logDir, o.kappa, o.seed); err != nil {
		return fmt.Errorf("final recovery identity: %w", err)
	}
	fmt.Fprintf(stdout, "crashloop: PASS: %d kill/restart cycles, %d events acknowledged (%d inserts alive, %d deletes settled), %d uncertain, final state verified against from-genesis replay of %d events\n",
		o.crashloop-1, acks, alive, deleted, uncertain, rec.Events)
	return nil
}
