package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSmokeMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-smoke", "-tick", "0"}, &stdout, &stderr); code != 0 {
		t.Fatalf("smoke exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "smoke ok: 100 events") {
		t.Fatalf("smoke output missing verdict:\n%s", out)
	}
	if !strings.Contains(out, "replays to identical graph") {
		t.Fatalf("smoke output missing replay check:\n%s", out)
	}
}

func TestLoadgenWritesBenchJSON(t *testing.T) {
	benchOut := filepath.Join(t.TempDir(), "bench.json")
	logOut := filepath.Join(t.TempDir(), "events.log")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-loadgen", "-clients", "3", "-events", "40", "-tick", "0",
		"-bench-out", benchOut, "-event-log", logOut,
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("loadgen exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(benchOut)
	if err != nil {
		t.Fatalf("bench-out: %v", err)
	}
	var rep loadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench-out decode: %v", err)
	}
	if rep.EventsTotal != 120 || rep.EventsPerSec <= 0 || !rep.ReplayIdentical || rep.Rejected != 0 {
		t.Fatalf("bench report = %+v", rep)
	}
	if _, err := os.Stat(logOut); err != nil {
		t.Fatalf("event log: %v", err)
	}
}

func TestLoadgenDistEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("dist loadgen is the slow path")
	}
	var stdout, stderr bytes.Buffer
	args := []string{"-loadgen", "-engine", "dist", "-clients", "2", "-events", "25", "-tick", "0"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("dist loadgen exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-engine", "quantum", "-smoke"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown engine accepted")
	}
	if code := run([]string{"-workload", "nope", "-smoke"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown workload accepted")
	}
}
