package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/xheal/xheal/internal/obs"
)

// TestSmokeSpanLogDistEngine runs the smoke pipeline on the distributed
// engine with an explicit span log and re-checks the acceptance contract
// from the outside: the kept span log parses, holds one span per deletion
// reported by the run, and every span carries protocol cost.
func TestSmokeSpanLogDistEngine(t *testing.T) {
	spanOut := filepath.Join(t.TempDir(), "run.spans")
	logOut := filepath.Join(t.TempDir(), "run.log")
	benchOut := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-smoke", "-engine", "dist", "-n", "32", "-tick", "0",
		"-spanlog", spanOut, "-event-log", logOut, "-bench-out", benchOut,
		"-slo-p99-tick-ms", "10000", // generous bound: asserts the plumbing, not the machine
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("smoke exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "repair latency p50/p95/p99") {
		t.Fatalf("missing repair latency line:\n%s", stdout.String())
	}

	f, err := os.Open(spanOut)
	if err != nil {
		t.Fatalf("span log: %v", err)
	}
	spans, err := obs.ReadSpans(f)
	f.Close()
	if err != nil {
		t.Fatalf("span log parse: %v", err)
	}

	data, err := os.ReadFile(benchOut)
	if err != nil {
		t.Fatalf("bench-out: %v", err)
	}
	var rep loadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench-out decode: %v", err)
	}
	if rep.Spans != uint64(len(spans)) || rep.SpansDropped != 0 {
		t.Fatalf("report spans %d/%d dropped, log holds %d", rep.Spans, rep.SpansDropped, len(spans))
	}
	if rep.RepairLatency == nil || rep.RepairLatency.Count != uint64(len(spans)) {
		t.Fatalf("report repair latency %+v for %d spans", rep.RepairLatency, len(spans))
	}
	if rep.TickLatency.Count == 0 || rep.TickLatency.P99MS <= 0 {
		t.Fatalf("report tick latency %+v", rep.TickLatency)
	}
	if rep.Env.GoVersion == "" || rep.Env.NumCPU <= 0 || rep.Env.GoMaxProcs <= 0 {
		t.Fatalf("report env %+v", rep.Env)
	}
	for i, s := range spans {
		if s.Seq != i {
			t.Fatalf("span %d: seq %d", i, s.Seq)
		}
		// The distributed engine costs every repair at least its black degree
		// in messages (Lemma 5) and one round.
		if s.Messages < s.BlackDegree || s.Rounds < 1 {
			t.Fatalf("span %d: %d messages for black degree %d, %d rounds", i, s.Messages, s.BlackDegree, s.Rounds)
		}
		if s.Phases.SettledUS < s.Phases.RewiredUS {
			t.Fatalf("span %d: settled before rewired: %+v", i, s.Phases)
		}
	}
}

// TestSloTickBoundFails: an impossible SLO must fail the run.
func TestSloTickBoundFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-smoke", "-tick", "0", "-slo-p99-tick-ms", "0.000001"}
	if code := run(args, &stdout, &stderr); code == 0 {
		t.Fatalf("impossible SLO passed\nstdout: %s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "SLO: p99 tick latency") {
		t.Fatalf("missing SLO verdict:\nstderr: %s", stderr.String())
	}
}

// TestPprofFlag: -pprof exposes the profile index on the serving mux without
// disturbing the API routes.
func TestPprofFlag(t *testing.T) {
	d, err := buildDaemon(options{engine: "seq", wl: "regular", n: 16, kappa: 4, seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.cleanup()
	defer d.srv.Close()

	h := d.handler(options{pprof: true})
	for path, want := range map[string]int{
		"/debug/pprof/": 200,
		"/v1/health":    200,
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != want {
			t.Fatalf("GET %s: %d, want %d", path, rec.Code, want)
		}
	}
	// Without the flag the profiler is absent.
	h = d.handler(options{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code == 200 {
		t.Fatal("pprof exposed without -pprof")
	}
}
