package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/checkpoint"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/dist"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/obs"
	"github.com/xheal/xheal/internal/scenario"
	"github.com/xheal/xheal/internal/server"
	"github.com/xheal/xheal/internal/trace"
)

// The -scenario mode drives a named chaos scenario from internal/scenario
// over the daemon's real HTTP surface, one wave per array POST, and gates
// the run on serving SLOs: zero acknowledged loss (no rejections), zero
// invariant violations, bounded sampled queue depth, p99 tick latency under
// -slo-p99-tick-ms, zero dropped spans, and replay identity of the event
// log. With -soak-minutes N it becomes a durable long soak instead: the
// stream runs unbounded against a -data-dir daemon while periodic probes
// recover the on-disk state (PR-7 machinery) and assert the watermark only
// moves forward, finishing with a full byte-identity recovery verification
// against the archived from-genesis log. Both variants emit a
// machine-readable pass/fail report (-scenario-out).

// scenarioReport is the -scenario-out schema: one JSON document carrying the
// run's parameters, throughput, latency percentiles, counters,
// recovery-probe results, and the SLO verdict.
type scenarioReport struct {
	Scenario    string  `json:"scenario"`
	Description string  `json:"description"`
	Engine      string  `json:"engine"`
	Workload    string  `json:"workload"`
	Parallelism int     `json:"parallelism"`
	N           int     `json:"n"`
	Wave        int     `json:"wave"`
	RateTarget  float64 `json:"rate_target"`
	Seed        int64   `json:"seed"`
	Soak        bool    `json:"soak"`
	SoakMinutes float64 `json:"soak_minutes,omitempty"`

	WallMS        float64 `json:"wall_ms"`
	EventsTotal   uint64  `json:"events_total"`
	Waves         int     `json:"waves"`
	Reads         uint64  `json:"reads"`
	EventsPerSec  float64 `json:"events_per_sec"`
	Ticks         uint64  `json:"ticks"`
	MeanBatch     float64 `json:"mean_batch"`
	Deferred      uint64  `json:"deferred"`
	Rejected      uint64  `json:"rejected"`
	Backlogged    uint64  `json:"backlogged"`
	Retries       uint64  `json:"retries"`
	MaxQueueDepth int     `json:"max_queue_depth"`
	QueueBound    int     `json:"queue_bound"`
	FinalNodes    int     `json:"final_nodes"`
	FinalEdges    int     `json:"final_edges"`

	// ReplayIdentical: the event log replays to the identical final graph.
	// ByteIdentical: a from-genesis per-event replay reaches a byte-identical
	// engine snapshot (finite mode: against the live engine; soak mode: the
	// VerifyRecovery check against the archived log).
	ReplayIdentical bool `json:"replay_identical"`
	ByteIdentical   bool `json:"byte_identical"`

	TickLatency   obs.LatencySummary  `json:"tick_latency"`
	RepairLatency *obs.LatencySummary `json:"repair_latency,omitempty"`
	Spans         uint64              `json:"spans"`
	SpansDropped  uint64              `json:"spans_dropped"`

	Checkpoints      uint64      `json:"checkpoints,omitempty"`
	CheckpointErrors uint64      `json:"checkpoint_errors,omitempty"`
	Probes           *probeStats `json:"recovery_probes,omitempty"`

	SLOP99TickMS float64  `json:"slo_p99_tick_ms,omitempty"`
	Pass         bool     `json:"pass"`
	Failures     []string `json:"failures,omitempty"`
	Env          obs.Env  `json:"env"`
}

// probeStats summarizes the soak's mid-run recovery probes.
type probeStats struct {
	Probes     int    `json:"probes"`
	Retries    int    `json:"retries"`
	Failures   int    `json:"failures"`
	FirstError string `json:"first_error,omitempty"`
	// LastEvents is the newest recovered Events watermark a probe observed.
	LastEvents uint64 `json:"last_events"`
}

// resolveScenario turns the flags into a running stream and aligns the
// daemon options with it: the daemon must build the exact genesis the stream
// compiled against, so workload/n/seed are forced to the resolved scenario
// parameters (explicit -n/-events/-seed flags override scenario defaults).
func resolveScenario(o *options) (*scenario.Stream, error) {
	p := scenario.Params{Wave: o.wave, Rate: o.rate}
	if o.flagSet("n") {
		p.N = o.n
	}
	if o.flagSet("events") {
		p.Events = o.events
	}
	if o.flagSet("seed") {
		p.Seed = o.seed
	}
	st, err := scenario.NewStream(o.scenarioName, p)
	if err != nil {
		return nil, err
	}
	rp := st.Params()
	o.wl, o.n, o.seed = st.Scenario().Workload, rp.N, rp.Seed
	return st, nil
}

func runScenario(o options, stdout, stderr io.Writer) int {
	st, err := resolveScenario(&o)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if o.soakMinutes > 0 {
		return runScenarioSoak(o, st, stdout, stderr)
	}
	return runScenarioFinite(o, st, stdout, stderr)
}

// scenarioRun is the state shared by the finite and soak drivers.
type scenarioRun struct {
	o        options
	st       *scenario.Stream
	d        *daemon
	client   *http.Client
	base     string
	bo       adversary.Backoff
	retries  uint64
	reads    uint64
	waves    int
	sent     uint64
	maxQueue atomic.Int64
	stopQ    chan struct{}
	failures []string
}

func (r *scenarioRun) failf(format string, args ...any) {
	r.failures = append(r.failures, fmt.Sprintf(format, args...))
}

// startHTTP serves the daemon on a loopback port and starts the queue-depth
// sampler.
func (r *scenarioRun) startHTTP() (*http.Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: r.d.handler(r.o)}
	go func() { _ = httpSrv.Serve(ln) }()
	r.base = "http://" + ln.Addr().String()
	r.client = &http.Client{Transport: &http.Transport{MaxIdleConns: 8, MaxIdleConnsPerHost: 8}}
	r.bo = adversary.Backoff{
		Base: time.Millisecond,
		Max:  250 * time.Millisecond,
		Rng:  rand.New(rand.NewSource(r.o.seed + 4000)),
	}
	r.stopQ = make(chan struct{})
	go func() {
		t := time.NewTicker(time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-r.stopQ:
				return
			case <-t.C:
				if d := int64(r.d.srv.QueueDepth()); d > r.maxQueue.Load() {
					r.maxQueue.Store(d)
				}
			}
		}
	}()
	return httpSrv, nil
}

// postWave submits one wave as a single array POST. A 503 verdict is
// backpressure: the response's Applied counts the prefix that was accepted
// before the queue filled, so the retry resubmits only the unapplied tail —
// an acknowledged event is never resent.
func (r *scenarioRun) postWave(events []adversary.Event) error {
	wire := make([]server.IngestEvent, len(events))
	for i, ev := range events {
		wire[i] = server.IngestEvent{Node: ev.Node, Neighbors: ev.Neighbors}
		switch ev.Kind {
		case adversary.Insert:
			wire[i].Kind = "insert"
		case adversary.Delete:
			wire[i].Kind = "delete"
		}
	}
	const maxAttempts = 10
	for attempt := 0; len(wire) > 0; attempt++ {
		body, err := json.Marshal(wire)
		if err != nil {
			return err
		}
		resp, err := r.client.Post(r.base+"/v1/events", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		var out server.IngestResponse
		decErr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if decErr != nil {
			return fmt.Errorf("decode ingest response: %w", decErr)
		}
		if out.Applied < 0 || out.Applied > len(wire) {
			return fmt.Errorf("ingest response applied=%d for %d events", out.Applied, len(wire))
		}
		wire = wire[out.Applied:]
		switch {
		case resp.StatusCode == http.StatusOK:
			if len(wire) != 0 {
				return fmt.Errorf("HTTP 200 but %d of the wave's events unapplied", len(wire))
			}
		case resp.StatusCode == http.StatusServiceUnavailable && attempt < maxAttempts-1:
			r.retries++
			time.Sleep(r.bo.Delay(attempt))
		default:
			return fmt.Errorf("wave refused: HTTP %d: %s (%d events unapplied)", resp.StatusCode, out.Error, len(wire))
		}
	}
	return nil
}

// doReads issues the scenario's interleaved read traffic: alternating
// health and metrics queries, each verified for liveness.
func (r *scenarioRun) doReads(n int) error {
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			h, err := getHealth(r.client, r.base)
			if err != nil {
				return err
			}
			if h.Status != "ok" || !h.Connected {
				return fmt.Errorf("unhealthy mid-scenario: status=%s connected=%v", h.Status, h.Connected)
			}
		} else {
			resp, err := r.client.Get(r.base + "/metrics")
			if err != nil {
				return err
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("metrics scrape: HTTP %d", resp.StatusCode)
			}
		}
		r.reads++
	}
	return nil
}

// nextWave pulls up to k events from the stream.
func (r *scenarioRun) nextWave(k int) []adversary.Event {
	wave := make([]adversary.Event, k)
	for i := range wave {
		wave[i] = r.st.Next()
	}
	return wave
}

// report assembles the common report fields after the daemon has closed.
func (r *scenarioRun) report(wall time.Duration, c server.Counters, final *graph.Graph, health server.Health) scenarioReport {
	p := r.st.Params()
	rep := scenarioReport{
		Scenario:      r.o.scenarioName,
		Description:   r.st.Scenario().Description,
		Engine:        r.o.engine,
		Workload:      r.o.wl,
		Parallelism:   r.o.parallel,
		N:             p.N,
		Wave:          p.Wave,
		RateTarget:    p.Rate,
		Seed:          p.Seed,
		WallMS:        float64(wall.Microseconds()) / 1000,
		EventsTotal:   r.sent,
		Waves:         r.waves,
		Reads:         r.reads,
		EventsPerSec:  float64(r.sent) / wall.Seconds(),
		Ticks:         c.Ticks,
		MeanBatch:     float64(c.EventsApplied) / float64(max(1, c.Ticks)),
		Deferred:      c.EventsDeferred,
		Rejected:      c.EventsRejected,
		Backlogged:    c.EventsBacklogged,
		Retries:       r.retries,
		MaxQueueDepth: int(r.maxQueue.Load()),
		QueueBound:    r.queueBound(),
		FinalNodes:    final.NumNodes(),
		FinalEdges:    final.NumEdges(),
		TickLatency:   health.Obs.TickLatency,
		RepairLatency: health.Obs.RepairLatency,
		Spans:         health.Obs.Spans,
		SpansDropped:  health.Obs.SpansDropped,
		SLOP99TickMS:  r.o.sloP99TickMS,
		Env:           obs.CaptureEnv(),
	}
	return rep
}

func (r *scenarioRun) queueBound() int {
	if r.o.sloMaxQueue > 0 {
		return r.o.sloMaxQueue
	}
	return r.o.queue
}

// checkCommonSLOs applies the gates both variants share.
func (r *scenarioRun) checkCommonSLOs(c server.Counters, health server.Health) {
	if c.EventsRejected != 0 {
		r.failf("SLO: %d events rejected, want 0 (acknowledged loss)", c.EventsRejected)
	}
	if err := r.d.srv.CheckInvariants(); err != nil {
		r.failf("SLO: invariant violation: %v", err)
	}
	if depth := r.d.srv.QueueDepth(); depth != 0 {
		r.failf("queue not drained on shutdown: %d", depth)
	}
	if mq := int(r.maxQueue.Load()); mq > r.queueBound() {
		r.failf("SLO: sampled queue depth peaked at %d, bound %d", mq, r.queueBound())
	}
	if r.d.rec != nil {
		if dropped := r.d.rec.Dropped(); dropped != 0 {
			r.failf("SLO: %d spans dropped, want 0", dropped)
		}
	}
	if r.o.sloP99TickMS > 0 && health.Obs.TickLatency.P99MS > r.o.sloP99TickMS {
		r.failf("SLO: p99 tick latency %.3f ms exceeds bound %.3f ms", health.Obs.TickLatency.P99MS, r.o.sloP99TickMS)
	}
}

// finish writes the report and renders the verdict.
func (r *scenarioRun) finish(rep scenarioReport, stdout, stderr io.Writer) int {
	rep.Pass = len(r.failures) == 0
	rep.Failures = r.failures
	if r.o.scenarioOut != "" {
		if dir := filepath.Dir(r.o.scenarioOut); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile(r.o.scenarioOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", r.o.scenarioOut)
	}
	fmt.Fprintf(stdout, "scenario %s: %d events in %d waves (%.0f events/sec), %d reads, %d ticks, mean batch %.1f, %d deferred, %d retries, max queue %d\n",
		rep.Scenario, rep.EventsTotal, rep.Waves, rep.EventsPerSec, rep.Reads, rep.Ticks, rep.MeanBatch, rep.Deferred, rep.Retries, rep.MaxQueueDepth)
	fmt.Fprintf(stdout, "tick latency p50/p95/p99 = %.3f/%.3f/%.3f ms over %d ticks\n",
		rep.TickLatency.P50MS, rep.TickLatency.P95MS, rep.TickLatency.P99MS, rep.TickLatency.Count)
	if !rep.Pass {
		for _, f := range r.failures {
			fmt.Fprintln(stderr, "FAIL:", f)
		}
		fmt.Fprintf(stderr, "scenario %s: FAIL (%d violations)\n", rep.Scenario, len(r.failures))
		return 1
	}
	fmt.Fprintf(stdout, "scenario %s: PASS\n", rep.Scenario)
	return 0
}

// runScenarioFinite runs the scenario's compiled event budget over HTTP and
// gates on the serving SLOs plus replay and byte identity of the event log.
func runScenarioFinite(o options, st *scenario.Stream, stdout, stderr io.Writer) int {
	if o.dataDir != "" {
		fmt.Fprintln(stderr, "finite -scenario runs are non-durable; use -soak-minutes for the durable soak (-data-dir) path")
		return 1
	}
	// A temp event log is cleaned up only on a passing run: on failure it is
	// the replay artifact (the printed xheal-sim -replay line must work).
	keepLog := o.eventLog != ""
	if o.eventLog == "" {
		tmp, err := os.CreateTemp("", "xheal-scenario-*.log")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		tmp.Close()
		o.eventLog = tmp.Name()
		defer func() {
			if !keepLog {
				os.Remove(o.eventLog)
			}
		}()
	}
	if o.spanLog == "" {
		tmp, err := os.CreateTemp("", "xheal-scenario-*.spans")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		tmp.Close()
		o.spanLog = tmp.Name()
		defer os.Remove(o.spanLog)
	}
	d, err := buildDaemon(o)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer d.cleanup()
	if !d.g0.Equal(st.Genesis()) {
		fmt.Fprintln(stderr, "daemon genesis does not match the scenario stream's (seed plumbing bug)")
		return 1
	}

	r := &scenarioRun{o: o, st: st, d: d}
	httpSrv, err := r.startHTTP()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	p := st.Params()
	fmt.Fprintf(stdout, "xheal-serve scenario: %s engine=%s workload=%s n=%d wave=%d rate=%.0f/s events=%d seed=%d parallelism=%d\n",
		o.scenarioName, o.engine, o.wl, p.N, p.Wave, p.Rate, p.Events, p.Seed, o.parallel)

	var interval time.Duration
	if p.Rate > 0 {
		interval = time.Duration(float64(p.Wave) / p.Rate * float64(time.Second))
	}
	start := time.Now()
	next := start
	readsPerWave := st.Scenario().ReadsPerWave
	for sent := 0; sent < p.Events; {
		if interval > 0 {
			time.Sleep(time.Until(next))
			next = next.Add(interval)
		}
		wave := r.nextWave(min(p.Wave, p.Events-sent))
		if err := r.postWave(wave); err != nil {
			fmt.Fprintf(stderr, "wave %d: %v\n", r.waves, err)
			return 1
		}
		if err := r.doReads(readsPerWave); err != nil {
			fmt.Fprintf(stderr, "wave %d reads: %v\n", r.waves, err)
			return 1
		}
		r.waves++
		sent += len(wave)
		r.sent += uint64(len(wave))
	}
	wall := time.Since(start)

	health, err := getHealth(r.client, r.base)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	_ = httpSrv.Close()
	close(r.stopQ)
	if err := d.srv.Close(); err != nil {
		fmt.Fprintf(stderr, "event log: %v\n", err)
		return 1
	}
	c := d.srv.Counters()
	final := d.srv.Graph()

	r.checkCommonSLOs(c, health)
	if health.Status != "ok" || !health.Connected {
		r.failf("unhealthy after load: status=%s connected=%v", health.Status, health.Connected)
	}
	if c.EventsApplied != r.sent {
		r.failf("applied %d of %d submitted events", c.EventsApplied, r.sent)
	}

	rep := r.report(wall, c, final, health)
	rep.Soak = false

	// Replay identity: the event log reproduces the served graph...
	lf, err := os.Open(o.eventLog)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	replayed, err := server.ReplayLog(lf, o.kappa, o.seed)
	lf.Close()
	switch {
	case err != nil:
		r.failf("event-log replay: %v", err)
	case !replayed.Equal(final):
		r.failf("event-log replay diverged (replay n=%d m=%d, live n=%d m=%d)",
			replayed.NumNodes(), replayed.NumEdges(), final.NumNodes(), final.NumEdges())
	default:
		rep.ReplayIdentical = true
	}
	// ... and a per-event from-genesis replay on the daemon's own engine
	// type reaches a byte-identical snapshot (the -crashloop/VerifyRecovery
	// identity property, here asserted on a live non-durable run).
	if err := replayByteIdentity(d, o); err != nil {
		r.failf("byte identity: %v", err)
	} else {
		rep.ByteIdentical = true
	}
	if err := verifySpans(d, c); err != nil {
		r.failf("span verification: %v", err)
	}
	fmt.Fprintf(stdout, "replay: xheal-sim -replay %s -kappa %d -seed %d\n", o.eventLog, o.kappa, o.seed)
	code := r.finish(rep, stdout, stderr)
	if code != 0 {
		keepLog = true
	}
	return code
}

// replayByteIdentity replays the finite run's event log one event per
// timestep on a fresh engine of the same kind and compares engine snapshots
// byte-for-byte with the live engine — the strongest replay check the
// snapshot layer offers, and engine batching must not affect it.
func replayByteIdentity(d *daemon, o options) error {
	lf, err := os.Open(d.logPath)
	if err != nil {
		return err
	}
	tr, err := trace.Load(lf)
	lf.Close()
	if err != nil {
		return err
	}
	var fresh server.Engine
	switch o.engine {
	case "seq":
		st, err := core.NewState(core.Config{Kappa: o.kappa, Seed: o.seed}, tr.Initial())
		if err != nil {
			return err
		}
		fresh = st
	case "dist":
		de, err := dist.NewEngine(dist.Config{Kappa: o.kappa, Seed: o.seed}, tr.Initial())
		if err != nil {
			return err
		}
		defer de.Close()
		fresh = de
	default:
		return fmt.Errorf("unknown engine %q", o.engine)
	}
	for i, ev := range tr.Events {
		var b core.Batch
		switch ev.Kind {
		case "insert":
			b.Insertions = []core.BatchInsertion{{Node: ev.Node, Neighbors: ev.Neighbors}}
		case "delete":
			b.Deletions = []graph.NodeID{ev.Node}
		default:
			return fmt.Errorf("event %d: bad kind %q", i, ev.Kind)
		}
		if err := fresh.ApplyBatch(b); err != nil {
			return fmt.Errorf("replay event %d: %w", i, err)
		}
	}
	freshSnap, ok1 := fresh.(server.Snapshotter)
	liveSnap, ok2 := d.eng.(server.Snapshotter)
	if !ok1 || !ok2 {
		return fmt.Errorf("engine does not support snapshotting")
	}
	want, err := freshSnap.SnapshotState()
	if err != nil {
		return err
	}
	got, err := liveSnap.SnapshotState()
	if err != nil {
		return err
	}
	if !bytes.Equal(want, got) {
		return fmt.Errorf("per-event replay snapshot differs from the live engine's")
	}
	return nil
}

// runScenarioSoak is the long-soak variant: a durable daemon under an
// unbounded scenario stream, with periodic recovery probes and a final
// recovery-identity verification against the archived log.
func runScenarioSoak(o options, st *scenario.Stream, stdout, stderr io.Writer) int {
	if o.eventLog != "" {
		fmt.Fprintln(stderr, "-event-log and soak mode are mutually exclusive (the data dir owns a segmented log)")
		return 1
	}
	if o.dataDir == "" {
		dir, err := os.MkdirTemp("", "xheal-soak-*")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		o.dataDir = dir
		defer os.RemoveAll(dir)
	}
	// The final identity check replays the full from-genesis history, so the
	// soak always archives compacted segments.
	o.archiveLog = true
	if o.spanLog == "" {
		tmp, err := os.CreateTemp("", "xheal-soak-*.spans")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		tmp.Close()
		o.spanLog = tmp.Name()
		defer os.Remove(o.spanLog)
	}
	d, err := buildDaemon(o)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer d.cleanup()
	engName, err := engineName(o.engine)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// The probe store is created once, up front, while no checkpoint save can
	// be in flight: NewFileStore sweeps orphaned temp files at open, and a
	// sweep racing the server's own mid-save temp file would delete it.
	ckptDir := filepath.Join(o.dataDir, "checkpoints")
	logDir := filepath.Join(o.dataDir, "log")
	probeStore, err := checkpoint.NewFileStore(ckptDir, 3)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	r := &scenarioRun{o: o, st: st, d: d}
	httpSrv, err := r.startHTTP()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	p := st.Params()
	soakDur := time.Duration(o.soakMinutes * float64(time.Minute))
	fmt.Fprintf(stdout, "xheal-serve soak: %s engine=%s workload=%s n=%d wave=%d rate=%.0f/s seed=%d duration=%v data-dir=%s\n",
		o.scenarioName, o.engine, o.wl, p.N, p.Wave, p.Rate, p.Seed, soakDur, o.dataDir)
	if rec := d.recovered; rec != nil && rec.FromCheckpoint {
		fmt.Fprintf(stdout, "resumed from checkpoint: events=%d tick=%d replayed=%d\n", rec.Events, rec.Tick, rec.Replayed)
	}

	var interval time.Duration
	if p.Rate > 0 {
		interval = time.Duration(float64(p.Wave) / p.Rate * float64(time.Second))
	}
	probeEvery := 3 * time.Second
	if soakDur < 4*probeEvery {
		probeEvery = soakDur / 4
	}
	probes := &probeStats{}
	resumeBase := uint64(0)
	if d.recovered != nil {
		resumeBase = d.recovered.Events
	}
	probes.LastEvents = resumeBase

	start := time.Now()
	deadline := start.Add(soakDur)
	next := start
	lastProbe := start
	readsPerWave := st.Scenario().ReadsPerWave
	for time.Now().Before(deadline) {
		if interval > 0 {
			time.Sleep(time.Until(next))
			next = next.Add(interval)
		}
		wave := r.nextWave(p.Wave)
		if err := r.postWave(wave); err != nil {
			fmt.Fprintf(stderr, "wave %d: %v\n", r.waves, err)
			return 1
		}
		if err := r.doReads(readsPerWave); err != nil {
			fmt.Fprintf(stderr, "wave %d reads: %v\n", r.waves, err)
			return 1
		}
		r.waves++
		r.sent += uint64(len(wave))

		if time.Since(lastProbe) >= probeEvery {
			lastProbe = time.Now()
			events, retries, err := probeRecovery(probeStore, logDir, engName, o, d.g0, probes.LastEvents)
			probes.Probes++
			probes.Retries += retries
			if err != nil {
				probes.Failures++
				if probes.FirstError == "" {
					probes.FirstError = err.Error()
				}
			} else {
				probes.LastEvents = events
			}
		}
	}
	wall := time.Since(start)

	health, err := getHealth(r.client, r.base)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	_ = httpSrv.Close()
	close(r.stopQ)
	if err := d.srv.Close(); err != nil {
		fmt.Fprintf(stderr, "event log: %v\n", err)
		return 1
	}
	c := d.srv.Counters()
	final := d.srv.Graph()

	r.checkCommonSLOs(c, health)
	if health.Status != "ok" || !health.Connected {
		r.failf("unhealthy after soak: status=%s connected=%v", health.Status, health.Connected)
	}
	if c.EventsApplied != r.sent {
		r.failf("applied %d of %d submitted events", c.EventsApplied, r.sent)
	}
	if c.CheckpointErrors != 0 {
		r.failf("%d checkpoint errors during soak", c.CheckpointErrors)
	}
	if probes.Probes == 0 {
		r.failf("soak finished without a single recovery probe")
	}
	if probes.Failures > 0 {
		r.failf("%d of %d recovery probes failed (first: %s)", probes.Failures, probes.Probes, probes.FirstError)
	}
	if r.d.rec != nil {
		if spans := r.d.rec.Spans(); spans != c.DeletesApplied {
			r.failf("%d repair spans for %d applied deletions", spans, c.DeletesApplied)
		}
	}

	rep := r.report(wall, c, final, health)
	rep.Soak = true
	rep.SoakMinutes = o.soakMinutes
	rep.Checkpoints = c.Checkpoints
	rep.CheckpointErrors = c.CheckpointErrors
	rep.Probes = probes

	// Final recovery: the on-disk state must rebuild to exactly the events
	// the daemon acknowledged, and verify byte-identical against a
	// from-genesis replay of the archived log.
	rec, err := server.Recover(server.RecoverConfig{
		Store: probeStore, LogDir: logDir,
		Engine: engName, Kappa: o.kappa, Seed: o.seed, Genesis: d.g0,
	})
	if err != nil {
		r.failf("final recovery: %v", err)
	} else {
		want := resumeBase + c.EventsApplied
		if rec.Events != want {
			r.failf("final recovery found %d events, daemon acknowledged %d", rec.Events, want)
		}
		if !rec.Engine.Graph().Equal(final) {
			r.failf("final recovered graph differs from the served graph")
		}
		if err := server.VerifyRecovery(rec.Engine, engName, logDir, o.kappa, o.seed); err != nil {
			r.failf("recovery identity: %v", err)
		} else {
			rep.ReplayIdentical = true
			rep.ByteIdentical = true
		}
		if de, ok := rec.Engine.(*dist.Engine); ok {
			de.Close()
		}
	}
	fmt.Fprintf(stdout, "soak: %d checkpoints, %d recovery probes (%d retries), final watermark %d events\n",
		c.Checkpoints, probes.Probes, probes.Retries, probes.LastEvents)
	return r.finish(rep, stdout, stderr)
}

// probeRecovery recovers the durable state mid-run and asserts the Events
// watermark is monotone. Log compaction/archiving can rename segments under
// a probe, so transient load errors get bounded retries before counting as
// a failure.
func probeRecovery(store checkpoint.Store, logDir, engName string, o options, g0 *graph.Graph, lastEvents uint64) (uint64, int, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		rec, err := server.Recover(server.RecoverConfig{
			Store: store, LogDir: logDir,
			Engine: engName, Kappa: o.kappa, Seed: o.seed, Genesis: g0,
		})
		if err != nil {
			lastErr = err
			time.Sleep(10 * time.Millisecond)
			continue
		}
		events := rec.Events
		if de, ok := rec.Engine.(*dist.Engine); ok {
			de.Close()
		}
		if events < lastEvents {
			return events, attempt, fmt.Errorf("recovery watermark went backwards: %d < %d", events, lastEvents)
		}
		return events, attempt, nil
	}
	return lastEvents, 3, lastErr
}
