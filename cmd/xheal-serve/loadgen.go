package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/xheal/xheal/internal/adversary"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/obs"
	"github.com/xheal/xheal/internal/server"
	"github.com/xheal/xheal/internal/trace"
)

// loadReport is the schema of -bench-out (see BENCH_PR6.json): the serving
// throughput record, the BENCH_*.json series' serve-side entry.
type loadReport struct {
	Engine          string  `json:"engine"`
	Workload        string  `json:"workload"`
	InitialNodes    int     `json:"initial_nodes"`
	Clients         int     `json:"clients"`
	EventsPerClient int     `json:"events_per_client"`
	EventsTotal     uint64  `json:"events_total"`
	WallMS          float64 `json:"wall_ms"`
	EventsPerSec    float64 `json:"events_per_sec"`
	Ticks           uint64  `json:"ticks"`
	MeanBatch       float64 `json:"mean_batch"`
	BatchMax        int     `json:"batch_max"`
	Deferred        uint64  `json:"deferred"`
	Rejected        uint64  `json:"rejected"`
	Backlogged      uint64  `json:"backlogged"`
	Retries         uint64  `json:"retries"`
	ApplyMSTotal    float64 `json:"apply_ms_total"`
	MeanWaitMS      float64 `json:"mean_wait_ms"`
	FinalNodes      int     `json:"final_nodes"`
	FinalEdges      int     `json:"final_edges"`
	ReplayIdentical bool    `json:"replay_identical"`
	// TickLatency and RepairLatency are streaming-histogram percentiles from
	// the daemon's /v1/health obs block; Spans counts per-wound trace spans.
	TickLatency   obs.LatencySummary  `json:"tick_latency"`
	RepairLatency *obs.LatencySummary `json:"repair_latency,omitempty"`
	Spans         uint64              `json:"spans"`
	SpansDropped  uint64              `json:"spans_dropped"`
	Env           obs.Env             `json:"env"`
}

// runLoad drives an in-process daemon through its real HTTP surface with
// seeded concurrent adversarial clients, then verifies the run: structural
// invariants, a healthy snapshot, queue drain on shutdown, and the event log
// replaying to the identical final graph. smoke mode is the same pipeline at
// fixed tiny scale with stricter, CI-friendly output.
func runLoad(o options, stdout, stderr io.Writer, smoke bool) int {
	if o.eventLog == "" {
		tmp, err := os.CreateTemp("", "xheal-serve-*.log")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		tmp.Close()
		o.eventLog = tmp.Name()
		defer os.Remove(o.eventLog)
	}
	// Per-wound tracing is always on under load: the span log is part of what
	// this mode verifies (span count == healed deletions == trace-log
	// deletions, ledger agreement, zero drops).
	if o.spanLog == "" {
		tmp, err := os.CreateTemp("", "xheal-serve-*.spans")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		tmp.Close()
		o.spanLog = tmp.Name()
		defer os.Remove(o.spanLog)
	}
	d, err := buildDaemon(o)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer d.cleanup()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	httpSrv := &http.Server{Handler: d.handler(o)}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	mode := "loadgen"
	if smoke {
		mode = "smoke"
	}
	fmt.Fprintf(stdout, "xheal-serve %s: engine=%s workload=%s n=%d kappa=%d seed=%d clients=%d events/client=%d tick=%v\n",
		mode, o.engine, o.wl, d.g0.NumNodes(), o.kappa, o.seed, o.clients, o.events, o.tick)

	anchors := append([]graph.NodeID(nil), d.g0.Nodes()...)
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.clients * 2,
		MaxIdleConnsPerHost: o.clients * 2,
	}}

	start := time.Now()
	var wg sync.WaitGroup
	var retries atomic.Uint64
	errs := make([]error, o.clients)
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := adversary.NewClientStream(c, anchors, o.deleteBias, o.attach, o.seed+1000)
			// A 503 verdict (queue backpressure) is the daemon telling the
			// client to come back, not a failure: retry with full-jitter
			// exponential backoff, bounded so a wedged daemon still fails
			// the run.
			bo := adversary.Backoff{
				Base: time.Millisecond,
				Max:  250 * time.Millisecond,
				Rng:  rand.New(rand.NewSource(o.seed + 2000 + int64(c))),
			}
			const maxAttempts = 8
			for i := 0; i < o.events; i++ {
				ev := stream.Next()
				var err error
				for attempt := 0; ; attempt++ {
					err = postEvent(client, base, ev)
					if err == nil || !errors.Is(err, errRetryable) || attempt == maxAttempts-1 {
						break
					}
					retries.Add(1)
					time.Sleep(bo.Delay(attempt))
				}
				if err != nil {
					errs[c] = fmt.Errorf("client %d event %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	// Health over the wire while the daemon is still up.
	health, err := getHealth(client, base)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if health.Status != "ok" || !health.Connected {
		fmt.Fprintf(stderr, "unhealthy after load: %+v\n", health)
		return 1
	}

	_ = httpSrv.Close()
	if err := d.srv.Close(); err != nil {
		fmt.Fprintf(stderr, "event log: %v\n", err)
		return 1
	}
	if depth := d.srv.QueueDepth(); depth != 0 {
		fmt.Fprintf(stderr, "queue not drained on shutdown: %d\n", depth)
		return 1
	}
	if err := d.srv.CheckInvariants(); err != nil {
		fmt.Fprintf(stderr, "INVARIANT VIOLATION: %v\n", err)
		return 1
	}
	c := d.srv.Counters()
	want := uint64(o.clients) * uint64(o.events)
	if c.EventsApplied != want || c.EventsRejected != 0 {
		fmt.Fprintf(stderr, "applied %d/%d events, %d rejected\n", c.EventsApplied, want, c.EventsRejected)
		return 1
	}

	// The event log must replay to the identical final graph.
	final := d.srv.Graph()
	f, err := os.Open(o.eventLog)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	replayed, err := server.ReplayLog(f, o.kappa, o.seed)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "replay: %v\n", err)
		return 1
	}
	if !replayed.Equal(final) {
		fmt.Fprintf(stderr, "event-log replay diverged from the served graph (replay n=%d m=%d, live n=%d m=%d)\n",
			replayed.NumNodes(), replayed.NumEdges(), final.NumNodes(), final.NumEdges())
		return 1
	}

	// Span-log verification: one span per healed deletion, correlated with
	// the trace log, agreeing with the engine's cost ledger, zero drops.
	if err := verifySpans(d, c); err != nil {
		fmt.Fprintf(stderr, "SPAN VERIFICATION: %v\n", err)
		return 1
	}

	// SLO assertions (the CI smoke gate): dropped spans always fail; the
	// tick-latency bound applies when set.
	if dropped := d.rec.Dropped(); dropped != 0 {
		fmt.Fprintf(stderr, "SLO: %d spans dropped, want 0\n", dropped)
		return 1
	}
	if o.sloP99TickMS > 0 && health.Obs.TickLatency.P99MS > o.sloP99TickMS {
		fmt.Fprintf(stderr, "SLO: p99 tick latency %.3f ms exceeds bound %.3f ms\n",
			health.Obs.TickLatency.P99MS, o.sloP99TickMS)
		return 1
	}

	report := loadReport{
		Engine:          o.engine,
		Workload:        o.wl,
		InitialNodes:    d.g0.NumNodes(),
		Clients:         o.clients,
		EventsPerClient: o.events,
		EventsTotal:     c.EventsApplied,
		WallMS:          float64(wall.Microseconds()) / 1000,
		EventsPerSec:    float64(c.EventsApplied) / wall.Seconds(),
		Ticks:           c.Ticks,
		MeanBatch:       float64(c.EventsApplied) / float64(max(1, c.Ticks)),
		BatchMax:        c.BatchMax,
		Deferred:        c.EventsDeferred,
		Rejected:        c.EventsRejected,
		Backlogged:      c.EventsBacklogged,
		Retries:         retries.Load(),
		ApplyMSTotal:    c.ApplySeconds * 1000,
		MeanWaitMS:      c.WaitSeconds * 1000 / float64(max(1, c.EventsApplied)),
		FinalNodes:      final.NumNodes(),
		FinalEdges:      final.NumEdges(),
		ReplayIdentical: true,
		TickLatency:     health.Obs.TickLatency,
		RepairLatency:   health.Obs.RepairLatency,
		Spans:           d.rec.Spans(),
		SpansDropped:    d.rec.Dropped(),
		Env:             obs.CaptureEnv(),
	}
	fmt.Fprintf(stdout, "%s ok: %d events in %.1f ms (%.0f events/sec), %d ticks, mean batch %.1f (max %d), %d deferred, %d backoff retries\n",
		mode, report.EventsTotal, report.WallMS, report.EventsPerSec,
		report.Ticks, report.MeanBatch, report.BatchMax, report.Deferred, report.Retries)
	fmt.Fprintf(stdout, "invariants ok, health ok, event log replays to identical graph (n=%d m=%d)\n",
		report.FinalNodes, report.FinalEdges)
	fmt.Fprintf(stdout, "tick latency p50/p95/p99 = %.3f/%.3f/%.3f ms over %d ticks\n",
		report.TickLatency.P50MS, report.TickLatency.P95MS, report.TickLatency.P99MS, report.TickLatency.Count)
	if rl := report.RepairLatency; rl != nil {
		fmt.Fprintf(stdout, "repair latency p50/p95/p99 = %.3f/%.3f/%.3f ms over %d spans (0 dropped)\n",
			rl.P50MS, rl.P95MS, rl.P99MS, rl.Count)
	}

	if o.benchOut != "" {
		if dir := filepath.Dir(o.benchOut); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile(o.benchOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", o.benchOut)
	}
	return 0
}

// verifySpans checks the span log against the run's ground truth: exactly
// one span per applied deletion, each span's event index naming the matching
// deletion line of the trace event log, and — on the distributed engine —
// every span's rounds and messages equal to the engine cost-ledger entry of
// the same ordinal.
func verifySpans(d *daemon, c server.Counters) error {
	if err := d.closeSpanLog(); err != nil {
		return fmt.Errorf("close span log: %w", err)
	}
	sf, err := os.Open(d.spanPath)
	if err != nil {
		return err
	}
	spans, err := obs.ReadSpans(sf)
	sf.Close()
	if err != nil {
		return err
	}
	if uint64(len(spans)) != c.DeletesApplied {
		return fmt.Errorf("%d spans for %d applied deletions", len(spans), c.DeletesApplied)
	}
	if got := d.rec.Spans(); got != uint64(len(spans)) {
		return fmt.Errorf("recorder counted %d spans, log holds %d", got, len(spans))
	}

	lf, err := os.Open(d.logPath)
	if err != nil {
		return err
	}
	tr, err := trace.Load(lf)
	lf.Close()
	if err != nil {
		return fmt.Errorf("load trace log: %w", err)
	}
	deletions := 0
	for _, ev := range tr.Events {
		if ev.Kind == "delete" {
			deletions++
		}
	}
	if deletions != len(spans) {
		return fmt.Errorf("%d spans for %d trace-log deletions", len(spans), deletions)
	}
	for i, s := range spans {
		if s.Event < 0 || s.Event >= len(tr.Events) {
			return fmt.Errorf("span %d: event index %d outside trace log (%d events)", i, s.Event, len(tr.Events))
		}
		ev := tr.Events[s.Event]
		if ev.Kind != "delete" || ev.Node != s.Node {
			return fmt.Errorf("span %d: event %d is %s %d, span says delete %d",
				i, s.Event, ev.Kind, ev.Node, s.Node)
		}
	}

	if d.dist != nil {
		costs := d.dist.Costs()
		if len(costs) != len(spans) {
			return fmt.Errorf("%d spans for %d cost-ledger entries", len(spans), len(costs))
		}
		for i, s := range spans {
			cl := costs[i]
			if s.Node != cl.Node || s.Rounds != cl.Rounds || s.Messages != cl.Messages {
				return fmt.Errorf("span %d (node %d, %d rounds, %d messages) disagrees with ledger (node %d, %d rounds, %d messages)",
					i, s.Node, s.Rounds, s.Messages, cl.Node, cl.Rounds, cl.Messages)
			}
		}
	}
	return nil
}

// errRetryable marks a verdict the client may retry: 503, the daemon's
// queue-backpressure (ErrBacklog) answer. The event was refused before
// enqueueing, so a retry can never double-apply it.
var errRetryable = errors.New("retryable rejection")

// postEvent sends one event and decodes the daemon's verdict.
func postEvent(client *http.Client, base string, ev adversary.Event) error {
	wire := server.IngestEvent{Node: ev.Node, Neighbors: ev.Neighbors}
	switch ev.Kind {
	case adversary.Insert:
		wire.Kind = "insert"
	case adversary.Delete:
		wire.Kind = "delete"
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var out server.IngestResponse
		_ = json.NewDecoder(resp.Body).Decode(&out)
		err := fmt.Errorf("%s %d: HTTP %d: %s", strings.ToLower(wire.Kind), ev.Node, resp.StatusCode, out.Error)
		if resp.StatusCode == http.StatusServiceUnavailable {
			err = fmt.Errorf("%w: %w", errRetryable, err)
		}
		return err
	}
	return nil
}

func getHealth(client *http.Client, base string) (server.Health, error) {
	var h server.Health
	resp, err := client.Get(base + "/v1/health")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("decode health: %w", err)
	}
	return h, nil
}
