module github.com/xheal/xheal

go 1.24
