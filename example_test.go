package xheal_test

import (
	"fmt"

	"github.com/xheal/xheal"
)

// Example demonstrates the core healing loop: the adversary deletes a hub
// and Xheal wires a κ-regular expander across the wound.
func Example() {
	g, err := xheal.StarGraph(12)
	if err != nil {
		panic(err)
	}
	n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(42))
	if err != nil {
		panic(err)
	}
	if err := n.Delete(0); err != nil { // the hub dies
		panic(err)
	}
	snap := n.Measure()
	fmt.Println("connected:", snap.Connected)
	fmt.Println("max degree within kappa:", snap.MaxDegree <= n.Kappa())
	// Output:
	// connected: true
	// max degree within kappa: true
}

// ExampleCompare reproduces the paper's star-attack comparison in a few
// lines: after deleting the hub, tree repairs collapse the expansion to
// O(1/n) while Xheal keeps it constant.
func ExampleCompare() {
	g, err := xheal.StarGraph(16)
	if err != nil {
		panic(err)
	}
	snaps, err := xheal.Compare(g, 0,
		[]string{xheal.HealerXheal, xheal.HealerForgivingTree},
		xheal.WithKappa(4), xheal.WithSeed(6))
	if err != nil {
		panic(err)
	}
	fmt.Printf("xheal h = %.3f\n", snaps[xheal.HealerXheal].ExpansionExact)
	fmt.Printf("tree  h = %.3f\n", snaps[xheal.HealerForgivingTree].ExpansionExact)
	// Output:
	// xheal h = 1.000
	// tree  h = 0.125
}

// ExampleNetwork_ApplyBatch shows the multi-event timestep extension.
func ExampleNetwork_ApplyBatch() {
	g, err := xheal.StarGraph(8)
	if err != nil {
		panic(err)
	}
	n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(1))
	if err != nil {
		panic(err)
	}
	err = n.ApplyBatch(xheal.Batch{
		Insertions: []xheal.BatchInsertion{{Node: 100, Neighbors: []xheal.NodeID{1}}},
		Deletions:  []xheal.NodeID{0, 2},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("connected:", n.Graph().IsConnected())
	// Output:
	// connected: true
}

// ExampleNewRouteTable shows localized route repair over a healed network.
func ExampleNewRouteTable() {
	g, err := xheal.PathGraph(10)
	if err != nil {
		panic(err)
	}
	n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(3))
	if err != nil {
		panic(err)
	}
	table := xheal.NewRouteTable()
	if _, err := table.Pin(n.Graph(), 0, 9); err != nil {
		panic(err)
	}
	if err := n.Delete(5); err != nil { // break the route's middle
		panic(err)
	}
	table.OnDelete(n.Graph(), 5)
	r, err := table.Get(0, 9)
	if err != nil {
		panic(err)
	}
	fmt.Println("route survives:", r.Valid(n.Graph()))
	// Output:
	// route survives: true
}
