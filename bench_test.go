package xheal_test

import (
	"testing"

	"github.com/xheal/xheal"
	"github.com/xheal/xheal/internal/benchcases"
	"github.com/xheal/xheal/internal/cuts"
	"github.com/xheal/xheal/internal/harness"
)

// --- experiment regeneration benches ----------------------------------------
//
// One benchmark per experiment (paper theorem/lemma/corollary/example); each
// regenerates the full table recorded in EXPERIMENTS.md. Run a single one
// with e.g.: go test -bench BenchmarkE9StarAttack -benchtime 1x

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var exp harness.Experiment
	for _, e := range harness.All() {
		if e.ID == id {
			exp = e
			break
		}
	}
	if exp.Run == nil {
		b.Fatalf("experiment %s not found", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := exp.Run()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

func BenchmarkE1Degree(b *testing.B)               { benchExperiment(b, "E1") }
func BenchmarkE2Stretch(b *testing.B)              { benchExperiment(b, "E2") }
func BenchmarkE3Expansion(b *testing.B)            { benchExperiment(b, "E3") }
func BenchmarkE4Spectral(b *testing.B)             { benchExperiment(b, "E4") }
func BenchmarkE5ExpanderPreservation(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6DistributedCost(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7HGraphExpansion(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8HGraphStationarity(b *testing.B)   { benchExperiment(b, "E8") }
func BenchmarkE9StarAttack(b *testing.B)           { benchExperiment(b, "E9") }
func BenchmarkE10LowerBound(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11Invariants(b *testing.B)          { benchExperiment(b, "E11") }
func BenchmarkE12Ablations(b *testing.B)           { benchExperiment(b, "E12") }
func BenchmarkE13Mixing(b *testing.B)              { benchExperiment(b, "E13") }
func BenchmarkE14Congestion(b *testing.B)          { benchExperiment(b, "E14") }

// --- micro benches on the core primitives -----------------------------------
//
// Bodies shared with `xheal-bench -benchjson` live in internal/benchcases so
// the committed BENCH_*.json trajectory measures exactly this code.

func BenchmarkHealDeletion(b *testing.B)        { benchcases.HealDeletion(b) }
func BenchmarkHealthPoll(b *testing.B)          { benchcases.HealthPoll(b) }
func BenchmarkHealthPollSlow(b *testing.B)      { benchcases.HealthPollSlow(b) }
func BenchmarkIngestArray(b *testing.B)         { benchcases.IngestArray(b) }
func BenchmarkApplyBatchSerial(b *testing.B)    { benchcases.ApplyBatchSerial(b) }
func BenchmarkApplyBatchParallel(b *testing.B)  { benchcases.ApplyBatchParallel(b) }
func BenchmarkDistributedDeletion(b *testing.B) { benchcases.DistributedDeletion(b) }
func BenchmarkHGraphChurn(b *testing.B)         { benchcases.HGraphChurn(b) }
func BenchmarkLambda2Jacobi(b *testing.B)       { benchcases.Lambda2Jacobi(b) }
func BenchmarkLambda2Lanczos(b *testing.B)      { benchcases.Lambda2Lanczos(b) }
func BenchmarkMixingTime(b *testing.B)          { benchcases.MixingTime(b) }

// BenchmarkExactExpansion measures the exhaustive cut enumerator at its
// size limit.
func BenchmarkExactExpansion(b *testing.B) {
	g, err := xheal.CompleteGraph(18)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cuts.EdgeExpansion(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteRepair measures one localized route splice after a deletion.
func BenchmarkRouteRepair(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := xheal.PathGraph(64)
		if err != nil {
			b.Fatal(err)
		}
		n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		table := xheal.NewRouteTable()
		if _, err := table.Pin(n.Graph(), 0, 63); err != nil {
			b.Fatal(err)
		}
		if err := n.Delete(32); err != nil {
			b.Fatal(err)
		}
		table.OnDelete(n.Graph(), 32)
		if table.Routes() != 1 {
			b.Fatal("route lost")
		}
	}
}

// BenchmarkStarHeal measures the headline repair: hub deletion on a star.
func BenchmarkStarHeal(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := xheal.StarGraph(64)
		if err != nil {
			b.Fatal(err)
		}
		n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := n.Delete(0); err != nil {
			b.Fatal(err)
		}
	}
}
