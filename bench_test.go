package xheal_test

import (
	"math/rand"
	"testing"

	"github.com/xheal/xheal"
	"github.com/xheal/xheal/internal/cuts"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/harness"
	"github.com/xheal/xheal/internal/hgraph"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/spectral"
)

// --- experiment regeneration benches ----------------------------------------
//
// One benchmark per experiment (paper theorem/lemma/corollary/example); each
// regenerates the full table recorded in EXPERIMENTS.md. Run a single one
// with e.g.: go test -bench BenchmarkE9StarAttack -benchtime 1x

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var exp harness.Experiment
	for _, e := range harness.All() {
		if e.ID == id {
			exp = e
			break
		}
	}
	if exp.Run == nil {
		b.Fatalf("experiment %s not found", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := exp.Run()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

func BenchmarkE1Degree(b *testing.B)               { benchExperiment(b, "E1") }
func BenchmarkE2Stretch(b *testing.B)              { benchExperiment(b, "E2") }
func BenchmarkE3Expansion(b *testing.B)            { benchExperiment(b, "E3") }
func BenchmarkE4Spectral(b *testing.B)             { benchExperiment(b, "E4") }
func BenchmarkE5ExpanderPreservation(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6DistributedCost(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7HGraphExpansion(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8HGraphStationarity(b *testing.B)   { benchExperiment(b, "E8") }
func BenchmarkE9StarAttack(b *testing.B)           { benchExperiment(b, "E9") }
func BenchmarkE10LowerBound(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11Invariants(b *testing.B)          { benchExperiment(b, "E11") }
func BenchmarkE12Ablations(b *testing.B)           { benchExperiment(b, "E12") }
func BenchmarkE13Mixing(b *testing.B)              { benchExperiment(b, "E13") }
func BenchmarkE14Congestion(b *testing.B)          { benchExperiment(b, "E14") }

// --- micro benches on the core primitives -----------------------------------

// BenchmarkHealDeletion measures one sequential Xheal repair in steady state
// (delete + re-insert on a churned network).
func BenchmarkHealDeletion(b *testing.B) {
	g, err := xheal.RandomRegularGraph(256, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(2))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	next := xheal.NodeID(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alive := n.Graph().Nodes()
		if err := n.Delete(alive[rng.Intn(len(alive))]); err != nil {
			b.Fatal(err)
		}
		alive = n.Graph().Nodes()
		if err := n.Insert(next, []xheal.NodeID{alive[rng.Intn(len(alive))], alive[rng.Intn(len(alive)-1)]}); err != nil {
			// Duplicate neighbor draws are possible; retry with one.
			if err := n.Insert(next, []xheal.NodeID{alive[0]}); err != nil {
				b.Fatal(err)
			}
		}
		next++
	}
}

// BenchmarkDistributedDeletion measures one full message-passing repair.
func BenchmarkDistributedDeletion(b *testing.B) {
	g, err := xheal.RandomRegularGraph(512, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	d, err := xheal.NewDistributed(g, xheal.WithKappa(4), xheal.WithSeed(5))
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	rng := rand.New(rand.NewSource(6))
	next := xheal.NodeID(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alive := d.State().AliveNodes()
		if err := d.Delete(alive[rng.Intn(len(alive))]); err != nil {
			b.Fatal(err)
		}
		alive = d.State().AliveNodes()
		if err := d.Insert(next, []xheal.NodeID{alive[rng.Intn(len(alive))]}); err != nil {
			b.Fatal(err)
		}
		next++
	}
}

// BenchmarkHGraphChurn measures the expander substrate's incremental ops.
func BenchmarkHGraphChurn(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ids := make([]graph.NodeID, 128)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	h, err := hgraph.New(3, ids, rng)
	if err != nil {
		b.Fatal(err)
	}
	next := graph.NodeID(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		members := h.Members()
		if err := h.Delete(members[rng.Intn(len(members))]); err != nil {
			b.Fatal(err)
		}
		if err := h.Insert(next); err != nil {
			b.Fatal(err)
		}
		next++
	}
}

// BenchmarkLambda2Jacobi measures the dense eigensolver path (n <= 220).
func BenchmarkLambda2Jacobi(b *testing.B) {
	g, err := xheal.RandomRegularGraph(128, 3, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if lam := spectral.AlgebraicConnectivity(g, rng); lam <= 0 {
			b.Fatal("non-positive lambda2")
		}
	}
}

// BenchmarkLambda2Lanczos measures the sparse eigensolver path (n > 220).
func BenchmarkLambda2Lanczos(b *testing.B) {
	g, err := xheal.RandomRegularGraph(512, 3, 10)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if lam := spectral.AlgebraicConnectivity(g, rng); lam <= 0 {
			b.Fatal("non-positive lambda2")
		}
	}
}

// BenchmarkExactExpansion measures the exhaustive cut enumerator at its
// size limit.
func BenchmarkExactExpansion(b *testing.B) {
	g, err := xheal.CompleteGraph(18)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cuts.EdgeExpansion(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMixingTime measures the exact lazy-walk mixing estimator.
func BenchmarkMixingTime(b *testing.B) {
	g, err := xheal.RandomRegularGraph(96, 3, 12)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := metrics.MixingTime(g, 0.05, 2000, 2, rng)
		if res.Steps > 2000 {
			b.Fatal("walk failed to mix")
		}
	}
}

// BenchmarkRouteRepair measures one localized route splice after a deletion.
func BenchmarkRouteRepair(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := xheal.PathGraph(64)
		if err != nil {
			b.Fatal(err)
		}
		n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		table := xheal.NewRouteTable()
		if _, err := table.Pin(n.Graph(), 0, 63); err != nil {
			b.Fatal(err)
		}
		if err := n.Delete(32); err != nil {
			b.Fatal(err)
		}
		table.OnDelete(n.Graph(), 32)
		if table.Routes() != 1 {
			b.Fatal("route lost")
		}
	}
}

// BenchmarkStarHeal measures the headline repair: hub deletion on a star.
func BenchmarkStarHeal(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := xheal.StarGraph(64)
		if err != nil {
			b.Fatal(err)
		}
		n, err := xheal.NewNetwork(g, xheal.WithKappa(4), xheal.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := n.Delete(0); err != nil {
			b.Fatal(err)
		}
	}
}
