// Command checkdocs is the documentation gate CI runs on every build. It
// fails (exit 1, one line per problem) when
//
//   - any Go package under ./internal/... or ./cmd/... lacks package-level
//     documentation of real substance (a package comment of at least
//     minDocLen characters on some non-test file), or
//   - any markdown link in README.md, ROADMAP.md, CHANGES.md, or docs/*.md
//     points at a file that does not exist, or at a heading anchor that
//     does not exist in its target.
//
// Run from the repository root: go run ./scripts/checkdocs
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// minDocLen is the "real prose, not a one-liner" floor for a package
// comment, in characters of comment text.
const minDocLen = 120

func main() {
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	checkPackageDocs([]string{"internal", "cmd"}, report)
	checkMarkdownLinks(markdownFiles(report), report)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "checkdocs: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("checkdocs: package docs and markdown links ok")
}

// checkPackageDocs walks the given roots for directories containing Go
// files and requires a substantive package comment in each.
func checkPackageDocs(roots []string, report func(string, ...any)) {
	for _, root := range roots {
		_ = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			if base := d.Name(); base == "testdata" {
				return filepath.SkipDir
			}
			entries, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			var goFiles []string
			for _, e := range entries {
				name := e.Name()
				if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
					goFiles = append(goFiles, filepath.Join(path, name))
				}
			}
			if len(goFiles) == 0 {
				return nil
			}
			best := 0
			fset := token.NewFileSet()
			for _, gf := range goFiles {
				f, err := parser.ParseFile(fset, gf, nil, parser.PackageClauseOnly|parser.ParseComments)
				if err != nil {
					report("%s: %v", gf, err)
					continue
				}
				if f.Doc != nil {
					if n := len(strings.TrimSpace(f.Doc.Text())); n > best {
						best = n
					}
				}
			}
			switch {
			case best == 0:
				report("package %s has no package-level documentation", path)
			case best < minDocLen:
				report("package %s documentation is a one-liner (%d chars, want >= %d)", path, best, minDocLen)
			}
			return nil
		})
	}
}

// markdownFiles returns the markdown set the link check covers.
func markdownFiles(report func(string, ...any)) []string {
	files := []string{"README.md", "ROADMAP.md", "CHANGES.md"}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		report("glob docs/*.md: %v", err)
	}
	files = append(files, docs...)
	var out []string
	for _, f := range files {
		if _, err := os.Stat(f); err != nil {
			report("expected markdown file missing: %s", f)
			continue
		}
		out = append(out, f)
	}
	return out
}

var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies every non-external link target resolves, and
// that heading-anchor fragments exist in the target file.
func checkMarkdownLinks(files []string, report func(string, ...any)) {
	anchors := map[string]map[string]bool{} // file -> slug set, lazily built
	anchorsOf := func(path string) map[string]bool {
		if set, ok := anchors[path]; ok {
			return set
		}
		set := map[string]bool{}
		data, err := os.ReadFile(path)
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if heading, ok := strings.CutPrefix(line, "#"); ok {
					set[slugify(strings.TrimLeft(heading, "#"))] = true
				}
			}
		}
		anchors[path] = set
		return set
	}

	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			report("%s: %v", file, err)
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			pathPart, fragment, _ := strings.Cut(target, "#")
			resolved := file
			if pathPart != "" {
				resolved = filepath.Join(filepath.Dir(file), pathPart)
				if _, err := os.Stat(resolved); err != nil {
					report("%s: broken link %q (%s does not exist)", file, target, resolved)
					continue
				}
			}
			if fragment != "" && strings.HasSuffix(resolved, ".md") {
				if !anchorsOf(resolved)[fragment] {
					report("%s: broken anchor %q (no heading #%s in %s)", file, target, fragment, resolved)
				}
			}
		}
	}
}

// slugify approximates GitHub's heading-anchor rule: lowercase, spaces to
// hyphens, punctuation dropped.
func slugify(heading string) string {
	heading = strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
