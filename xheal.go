package xheal

import (
	"io"
	"math/rand"
	"sync"

	"github.com/xheal/xheal/internal/baseline"
	"github.com/xheal/xheal/internal/core"
	"github.com/xheal/xheal/internal/dist"
	"github.com/xheal/xheal/internal/graph"
	"github.com/xheal/xheal/internal/metrics"
	"github.com/xheal/xheal/internal/routing"
	"github.com/xheal/xheal/internal/workload"
)

// Re-exported fundamental types. Aliases keep the public API thin while the
// implementation lives in internal packages.
type (
	// NodeID identifies a node (a processor in the paper's model).
	NodeID = graph.NodeID
	// Edge is an undirected edge in canonical (U ≤ V) form.
	Edge = graph.Edge
	// Graph is a dynamic undirected simple graph.
	Graph = graph.Graph
	// Snapshot is one measurement of a healed graph against its baseline G′.
	Snapshot = metrics.Snapshot
	// Stats counts the healing work a Network has performed.
	Stats = core.Stats
	// Healer is a pluggable self-healing algorithm (Xheal or a baseline).
	Healer = baseline.Healer
	// Distributed is the goroutine-per-node protocol engine implementing
	// the paper's §5 with round and message accounting.
	Distributed = dist.Engine
	// DeletionCost is one distributed repair's measured cost (Theorem 5).
	DeletionCost = dist.DeletionCost
)

// NewGraph returns an empty graph to build an initial topology with.
func NewGraph() *Graph { return graph.New() }

// Network is a self-healing network driven by adversarial events: the
// sequential reference implementation of Xheal (paper Algorithm 3.1).
type Network struct {
	state *core.State

	// measureRng backs Measure/MeasureFast; reseeded per call so repeated
	// measurements stay deterministic without allocating a generator each
	// time (MeasureFast sits in tight loops).
	measureMu  sync.Mutex
	measureRng *rand.Rand
}

// NewNetwork builds a self-healing network over a copy of the initial
// topology. The initial edges are colored black, per the paper.
func NewNetwork(initial *Graph, opts ...Option) (*Network, error) {
	cfg := buildConfig(opts)
	state, err := core.NewState(core.Config{Kappa: cfg.kappa, Seed: cfg.seed}, initial)
	if err != nil {
		return nil, err
	}
	return &Network{state: state, measureRng: rand.New(rand.NewSource(1))}, nil
}

// Insert applies an adversarial insertion: node u joins with black edges to
// the given existing nodes. No healing is required (paper §3).
func (n *Network) Insert(u NodeID, nbrs []NodeID) error {
	return n.state.InsertNode(u, nbrs)
}

// Delete applies an adversarial deletion of v and heals the wound with
// expander clouds (paper Algorithm 3.1, Cases 1, 2.1, 2.2).
func (n *Network) Delete(v NodeID) error {
	return n.state.DeleteNode(v)
}

// Graph returns the healed graph G. Live view — do not modify.
func (n *Network) Graph() *Graph { return n.state.Graph() }

// Baseline returns G′: original nodes plus insertions, with deletions
// ignored (deleted nodes included). Live view — do not modify.
func (n *Network) Baseline() *Graph { return n.state.Baseline() }

// Kappa returns the expander degree parameter κ.
func (n *Network) Kappa() int { return n.state.Kappa() }

// Stats returns the healing-work counters.
func (n *Network) Stats() Stats { return n.state.Stats() }

// Alive reports whether v is present in the healed graph.
func (n *Network) Alive(v NodeID) bool { return n.state.Alive(v) }

// DegreeBound returns the paper's Theorem 2.1 bound κ·deg_G′(x) + 2κ for x.
func (n *Network) DegreeBound(x NodeID) int { return n.state.DegreeBound(x) }

// CheckInvariants verifies the full internal consistency of the network
// (cloud structure, edge claims, the degree bound). It returns nil when all
// of the paper's structural invariants hold.
func (n *Network) CheckInvariants() error { return n.state.CheckInvariants() }

// Measure computes the paper's metrics for the current healed graph against
// G′: degree ratio, stretch, expansion/conductance (exact on small graphs),
// spectral gaps, and sweep-cut witness bounds.
func (n *Network) Measure() Snapshot {
	n.measureMu.Lock()
	defer n.measureMu.Unlock()
	n.measureRng.Seed(1)
	return metrics.Measure(n.state.Graph(), n.state.Baseline(), metrics.Config{
		SweepCuts: true,
		Rng:       n.measureRng,
	})
}

// MeasureFast is Measure without the spectral computations and with sampled
// stretch, for use in tight loops.
func (n *Network) MeasureFast() Snapshot {
	n.measureMu.Lock()
	defer n.measureMu.Unlock()
	n.measureRng.Seed(1)
	return metrics.Measure(n.state.Graph(), n.state.Baseline(), metrics.Config{
		SkipSpectral:   true,
		StretchSources: 4,
		Rng:            n.measureRng,
	})
}

// NewDistributed builds the distributed protocol engine over a copy of the
// initial topology: one goroutine per node, synchronous rounds, and message
// accounting per the paper's §5. Close it when done.
func NewDistributed(initial *Graph, opts ...Option) (*Distributed, error) {
	cfg := buildConfig(opts)
	return dist.NewEngine(dist.Config{Kappa: cfg.kappa, Seed: cfg.seed}, initial)
}

// Healer names for NewHealer, re-exported from the baseline suite.
const (
	HealerXheal          = baseline.NameXheal
	HealerForgivingTree  = baseline.NameForgivingTree
	HealerForgivingGraph = baseline.NameForgivingGraph
	HealerCycle          = baseline.NameCycle
	HealerStar           = baseline.NameStar
	HealerClique         = baseline.NameClique
	HealerNone           = baseline.NameNone
)

// HealerNames returns every available healer name, Xheal first.
func HealerNames() []string { return baseline.Names() }

// NewHealer constructs the named healing algorithm over a copy of g0 —
// Xheal itself or one of the comparison baselines (Forgiving-Tree-style,
// Forgiving-Graph-style, cycle, star, clique, none).
func NewHealer(name string, g0 *Graph, opts ...Option) (Healer, error) {
	cfg := buildConfig(opts)
	return baseline.New(name, g0, cfg.kappaOrDefault(), cfg.seed)
}

// Compare runs the same deletion against every named healer on copies of g0
// and returns each healed snapshot, keyed by healer name. It is the
// programmatic form of the paper's star-attack comparison.
func Compare(g0 *Graph, delete NodeID, names []string, opts ...Option) (map[string]Snapshot, error) {
	out := make(map[string]Snapshot, len(names))
	for _, name := range names {
		h, err := NewHealer(name, g0, opts...)
		if err != nil {
			return nil, err
		}
		if err := h.Delete(delete); err != nil {
			return nil, err
		}
		out[name] = metrics.Measure(h.Graph(), g0, metrics.Config{
			SweepCuts: true,
			Rng:       rand.New(rand.NewSource(1)),
		})
	}
	return out, nil
}

// Initial-topology generators re-exported for building scenarios.

// StarGraph returns K_{1,leaves}: hub node 0 plus the given leaves.
func StarGraph(leaves int) (*Graph, error) { return workload.Star(leaves) }

// PathGraph returns the path on n nodes.
func PathGraph(n int) (*Graph, error) { return workload.Path(n) }

// CycleGraph returns the cycle on n nodes.
func CycleGraph(n int) (*Graph, error) { return workload.Cycle(n) }

// CompleteGraph returns K_n.
func CompleteGraph(n int) (*Graph, error) { return workload.Complete(n) }

// GridGraph returns the rows×cols grid.
func GridGraph(rows, cols int) (*Graph, error) { return workload.Grid(rows, cols) }

// HypercubeGraph returns the dim-dimensional hypercube.
func HypercubeGraph(dim int) (*Graph, error) { return workload.Hypercube(dim) }

// RandomRegularGraph returns a connected random 2d-regular graph (a random
// H-graph — the paper's own expander construction).
func RandomRegularGraph(n, halfDegree int, seed int64) (*Graph, error) {
	return workload.RandomRegular(n, halfDegree, rand.New(rand.NewSource(seed)))
}

// ErdosRenyiGraph returns a connected G(n, p) sample.
func ErdosRenyiGraph(n int, p float64, seed int64) (*Graph, error) {
	return workload.ErdosRenyi(n, p, rand.New(rand.NewSource(seed)))
}

// PreferentialAttachmentGraph returns a power-law graph grown by
// degree-proportional attachment with m edges per arrival.
func PreferentialAttachmentGraph(n, m int, seed int64) (*Graph, error) {
	return workload.PreferentialAttachment(n, m, rand.New(rand.NewSource(seed)))
}

// Batch support: the paper notes the algorithm "can be extended to handle
// multiple insertions/deletions"; ApplyBatch is that extension.

// Batch is one multi-event timestep: all insertions are applied first (they
// commute with healing, per the paper's Lemma 2 argument), then each
// deletion is healed in turn.
type Batch = core.Batch

// BatchInsertion is one node joining within a Batch.
type BatchInsertion = core.BatchInsertion

// ApplyBatch applies a multi-event timestep atomically: the batch is
// validated up front and rejected wholesale on conflict.
func (n *Network) ApplyBatch(b Batch) error { return n.state.ApplyBatch(b) }

// ApplyBatchParallel is ApplyBatch with the batch's deletions healed
// concurrently where their repair footprints are disjoint (Theorem 5's
// locality argument makes such repairs independent). workers bounds the
// worker pool; the final state is byte-identical to ApplyBatch's for any
// worker count. See core.State.ApplyBatchParallel.
func (n *Network) ApplyBatchParallel(b Batch, workers int) error {
	return n.state.ApplyBatchParallel(b, workers)
}

// LastRepairGroups reports how the most recent ApplyBatchParallel call
// grouped the batch's deletions (nil when it took the plain serial path).
// Observability hook for conformance's per-group ledger checks.
func (n *Network) LastRepairGroups() [][]NodeID { return n.state.LastRepairGroups() }

// WriteDOT renders the healed graph in Graphviz DOT form with the paper's
// color convention: black original/inserted edges, red primary-cloud edges,
// orange secondary-cloud edges, bridge nodes as boxes.
func (n *Network) WriteDOT(w io.Writer) error { return n.state.WriteDOT(w) }

// Route maintenance: the paper's conclusion asks "Can we efficiently find
// new routes to replace the routes damaged by the deletions?" — the routing
// types below implement that extension with localized route splicing.

type (
	// RouteTable maintains pinned routes over a healed graph and repairs
	// them locally after deletions.
	RouteTable = routing.Table
	// Route is one pinned path.
	Route = routing.Route
	// RouteStats aggregates repair locality counters.
	RouteStats = routing.RepairStats
)

// NewRouteTable returns an empty route table. Pin routes against
// Network.Graph(), and call its OnDelete after every Network.Delete to
// repair damage through the healed topology.
func NewRouteTable() *RouteTable { return routing.NewTable() }
